"""Interval (universal) routing tables (Section 5.1.2 of the paper).

Interval routing [van Leeuwen & Tan 1987] relabels the nodes so that each
output port of a router serves one contiguous interval of labels; the
router then needs only as many table entries as it has ports, independent
of the network size.  The Transputer C-104 switch uses this scheme.

We implement the classic universal construction: labels are assigned by a
depth-first traversal of a spanning tree, each tree edge toward a child
serves the interval covering that child's subtree, and the remaining
(cyclic) interval is served by the edge toward the parent.  Routing is
therefore confined to the spanning tree, which demonstrates the
limitations the paper lists -- paths are generally non-minimal and the
scheme is not readily adaptive -- while staying deadlock free (tree
routing admits no cyclic channel dependence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.topology import LOCAL_PORT, Topology
from repro.tables.base import RoutingTable, TableProgrammingError

__all__ = ["IntervalRoutingTable"]


class IntervalRoutingTable(RoutingTable):
    """A spanning-tree interval-labelling routing table.

    Parameters
    ----------
    topology:
        Network to label.  Any connected topology is accepted (interval
        routing is "universal").
    root:
        Node at which the depth-first labelling starts.
    """

    name = "interval"

    def __init__(self, topology: Topology, root: int = 0) -> None:
        if not 0 <= root < topology.num_nodes:
            raise ValueError(f"root {root} is not a node of {topology!r}")
        self._topology = topology
        self._root = root
        self._label: List[int] = [0] * topology.num_nodes
        self._subtree_size: List[int] = [0] * topology.num_nodes
        self._parent_port: List[Optional[int]] = [None] * topology.num_nodes
        #: per node: list of (low, high, port) half-open label intervals.
        self._intervals: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(topology.num_nodes)
        ]
        self._build()

    def _build(self) -> None:
        """Assign DFS preorder labels and derive the per-port intervals."""
        topology = self._topology
        visited = [False] * topology.num_nodes
        next_label = 0
        # Iterative DFS recording (node, parent, parent_port) to avoid
        # recursion limits on large networks.
        order: List[int] = []
        children: Dict[int, List[Tuple[int, int]]] = {
            node: [] for node in range(topology.num_nodes)
        }
        stack: List[Tuple[int, Optional[int], Optional[int]]] = [(self._root, None, None)]
        while stack:
            node, parent, parent_port = stack.pop()
            if visited[node]:
                continue
            visited[node] = True
            self._label[node] = next_label
            next_label += 1
            order.append(node)
            if parent is not None:
                children[parent].append((parent_port, node))
                self._parent_port[node] = topology.reverse_port(parent_port)
            # Push neighbors in reverse port order so lower ports are
            # explored first (purely for deterministic labellings).
            for port in range(topology.radix - 1, 0, -1):
                neighbor = topology.neighbor(node, port)
                if neighbor is not None and not visited[neighbor]:
                    stack.append((neighbor, node, port))
        if next_label != topology.num_nodes:
            raise TableProgrammingError("topology is not connected; cannot label")
        # Subtree sizes via reverse DFS order.
        for node in reversed(order):
            self._subtree_size[node] = 1 + sum(
                self._subtree_size[child] for _, child in children[node]
            )
        # Intervals: each child edge serves the child's subtree label range;
        # everything else goes toward the parent (or is local at the root).
        total = topology.num_nodes
        for node in range(total):
            own = self._label[node]
            self._intervals[node].append((own, own + 1, LOCAL_PORT))
            for port, child in children[node]:
                low = self._label[child]
                high = low + self._subtree_size[child]
                self._intervals[node].append((low, high, port))
            if self._parent_port[node] is not None:
                # The complement of [own, own + subtree) modulo N, expressed
                # as at most two plain intervals.
                low = own
                high = own + self._subtree_size[node]
                if low > 0:
                    self._intervals[node].append((0, low, self._parent_port[node]))
                if high < total:
                    self._intervals[node].append((high, total, self._parent_port[node]))

    # -- RoutingTable interface ---------------------------------------------

    @property
    def topology(self) -> Topology:
        """Topology this table was programmed for."""
        return self._topology

    def label_of(self, node: int) -> int:
        """Interval-routing label assigned to ``node``."""
        return self._label[node]

    def lookup(self, current: int, destination: int) -> Tuple[int, ...]:
        target = self._label[destination]
        for low, high, port in self._intervals[current]:
            if low <= target < high:
                return (port,)
        raise AssertionError(
            f"label {target} not covered at node {current}; intervals are inconsistent"
        )

    def entries_per_router(self) -> int:
        # One interval per router port, the defining property of the scheme.
        return self._topology.radix

    def num_routers(self) -> int:
        return self._topology.num_nodes

    def intervals(self, node: int) -> List[Tuple[int, int, int]]:
        """The (low, high, port) interval list of one router."""
        return list(self._intervals[node])
