"""Economical-storage routing tables (Section 5.2 of the paper).

The paper's key storage proposal: for an n-dimensional mesh, the candidate
output ports of every minimal routing relation depend only on the *sign*
of the per-dimension offset between the current node and the destination.
There are three possible signs per dimension (+, -, 0), so a 3^n-entry
table -- 9 entries for a 2-D mesh, 27 for a 3-D mesh -- suffices to encode
fully adaptive minimal routing, independent of the network size.

The router indexes the table with ``(sign(d_x - i_x), sign(d_y - i_y), ...)``
computed with two small comparators per dimension; see
:meth:`EconomicalStorageTable.index_of`.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.network.topology import LOCAL_PORT, Topology, port_for
from repro.routing.providers import PortProvider, minimal_adaptive_provider
from repro.tables.base import RoutingTable, TableProgrammingError

__all__ = ["EconomicalStorageTable"]

Signs = Tuple[int, ...]


def _geometric_ports(signs: Signs) -> Tuple[int, ...]:
    """The productive ports implied directly by a sign pattern."""
    if all(sign == 0 for sign in signs):
        return (LOCAL_PORT,)
    ports = []
    for dimension, sign in enumerate(signs):
        if sign > 0:
            ports.append(port_for(dimension, positive=True))
        elif sign < 0:
            ports.append(port_for(dimension, positive=False))
    return tuple(ports)


class EconomicalStorageTable(RoutingTable):
    """A 3^n-entry, sign-indexed routing table for n-dimensional meshes.

    Parameters
    ----------
    topology:
        Mesh (or torus) the table is programmed for.
    provider:
        Routing relation to program.  Defaults to minimal fully adaptive
        routing.  Because one entry serves *every* destination sharing a
        sign pattern, the programmed entry is the intersection of the
        provider's answers over those destinations; for sign-invariant
        relations (minimal adaptive, the turn models) this equals the
        provider's answer for any representative destination.
    per_node:
        When True (default) each router gets its own 3^n-entry table, as in
        hardware.  Entries can then be reprogrammed per router (e.g. the
        paper's Fig. 7 North-Last example programs node (1,1) of a 3x3
        mesh).
    """

    name = "economical-storage"

    def __init__(
        self,
        topology: Topology,
        provider: Optional[PortProvider] = None,
        per_node: bool = True,
    ) -> None:
        if provider is None:
            provider = minimal_adaptive_provider(topology)
        self._topology = topology
        self._per_node = per_node
        self._sign_patterns = tuple(product((-1, 0, 1), repeat=topology.n_dims))
        self._tables: List[Dict[Signs, Tuple[int, ...]]] = [
            self._program_node(node, provider) for node in range(topology.num_nodes)
        ]

    def _program_node(self, node: int, provider: PortProvider) -> Dict[Signs, Tuple[int, ...]]:
        """Build the 3^n-entry table of one router from a provider."""
        intersections: Dict[Signs, Optional[set]] = {
            signs: None for signs in self._sign_patterns
        }
        for destination in range(self._topology.num_nodes):
            signs = self._topology.relative_signs(node, destination)
            ports = set(provider(node, destination))
            if intersections[signs] is None:
                intersections[signs] = ports
            else:
                intersections[signs] &= ports
        table: Dict[Signs, Tuple[int, ...]] = {}
        for signs in self._sign_patterns:
            common = intersections[signs]
            if common is None:
                # No destination exhibits this sign pattern from this node
                # (e.g. a corner node has no (-, -) destinations); program
                # the geometric default, it will never be consulted.
                table[signs] = _geometric_ports(signs)
            elif not common:
                raise TableProgrammingError(
                    f"provider gives no common port for sign pattern {signs} at "
                    f"node {node}; the relation cannot be encoded in a sign-indexed table"
                )
            else:
                table[signs] = tuple(sorted(common))
        return table

    # -- RoutingTable interface ---------------------------------------------

    @property
    def topology(self) -> Topology:
        """Topology this table was programmed for."""
        return self._topology

    def index_of(self, current: int, destination: int) -> Signs:
        """The sign tuple used to index the table (the paper's (s_x, s_y))."""
        return self._topology.relative_signs(current, destination)

    def lookup(self, current: int, destination: int) -> Tuple[int, ...]:
        return self._tables[current][self.index_of(current, destination)]

    def entry(self, node: int, signs: Signs) -> Tuple[int, ...]:
        """Direct access to one of the 3^n entries of a router's table."""
        return self._tables[node][tuple(signs)]

    def reprogram(self, node: int, signs: Signs, ports: Tuple[int, ...]) -> None:
        """Overwrite one entry of one router's table.

        This is how specific algorithms deny otherwise-minimal ports to
        guarantee deadlock freedom (the paper's Fig. 7 North-Last example).
        """
        signs = tuple(signs)
        if signs not in self._tables[node]:
            raise TableProgrammingError(f"invalid sign pattern {signs}")
        if not ports:
            raise TableProgrammingError("a table entry needs at least one port")
        for port in ports:
            if not 0 <= port < self._topology.radix:
                raise TableProgrammingError(
                    f"port {port} does not exist on a radix-{self._topology.radix} router"
                )
        self._tables[node][signs] = tuple(ports)
        self._notify_reprogrammed()

    def entries_per_router(self) -> int:
        return 3 ** self._topology.n_dims

    def num_routers(self) -> int:
        return self._topology.num_nodes

    def describe(self, node: int) -> List[Tuple[Signs, Tuple[int, ...]]]:
        """The full entry list of one router, for reports and the Fig. 7 bench."""
        return [(signs, self._tables[node][signs]) for signs in self._sign_patterns]
