"""Routing-table interface.

A routing table answers, for the router of a given node, "which output
ports may a message heading to destination ``d`` take?".  Tables are
*programmed* from a routing-relation provider (see
:mod:`repro.routing.providers`) exactly as a real table-based router's
tables are written by system software at boot time, and then only consulted
(``lookup``) during simulation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

__all__ = ["RoutingTable", "TableProgrammingError"]


class TableProgrammingError(ValueError):
    """Raised when a table is programmed with an inconsistent relation."""


class RoutingTable(ABC):
    """Abstract routing table shared by all storage organisations."""

    #: Human-readable name used in experiment reports.
    name: str = "table"

    @abstractmethod
    def lookup(self, current: int, destination: int) -> Tuple[int, ...]:
        """Candidate output ports at node ``current`` for ``destination``.

        The returned tuple is never empty; routing to the local node
        returns ``(LOCAL_PORT,)``.
        """

    @abstractmethod
    def entries_per_router(self) -> int:
        """Number of table entries stored in each router.

        This is the storage metric compared in Table 5 of the paper (each
        entry holds up to one port choice per alternative path).
        """

    def total_entries(self) -> int:
        """Total entries over the whole network (entries × routers)."""
        return self.entries_per_router() * self.num_routers()

    @abstractmethod
    def num_routers(self) -> int:
        """Number of routers this table instance covers."""

    # -- reprogramming notifications ------------------------------------------

    def on_reprogram(self, callback) -> None:
        """Register ``callback()`` to run whenever this table is reprogrammed.

        The routing algorithms memoize their ``decide`` results
        (:meth:`repro.routing.base.RoutingAlgorithm.decision_cache`); the
        software-programmable organisations call
        :meth:`_notify_reprogrammed` from their ``reprogram`` methods so
        those memos are dropped instead of silently serving stale routes.
        """
        listeners = getattr(self, "_reprogram_listeners", None)
        if listeners is None:
            listeners = []
            self._reprogram_listeners = listeners
        if callback not in listeners:
            listeners.append(callback)

    def _notify_reprogrammed(self) -> None:
        """Invoke every registered reprogramming listener."""
        for callback in getattr(self, "_reprogram_listeners", ()):
            callback()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries_per_router={self.entries_per_router()})"
        )
