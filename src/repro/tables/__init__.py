"""Routing-table implementations (Section 5 of the paper).

Adaptive table-based routing needs multiple candidate output ports per
destination, which inflates the routing-table RAM.  The paper compares
three storage organisations, all of which are implemented here:

* :class:`~repro.tables.full_table.FullRoutingTable` -- one entry per
  destination node (the Cray T3D/T3E / Sun S3.mp organisation).
* :class:`~repro.tables.meta_table.MetaRoutingTable` -- a two-level
  hierarchical (cluster / sub-cluster) organisation (SGI SPIDER,
  Servernet-II), with the two cluster mappings of the paper's Fig. 8.
* :class:`~repro.tables.economical.EconomicalStorageTable` -- the paper's
  proposal: a 3^n-entry table indexed by the sign of the per-dimension
  offset to the destination (9 entries for 2-D, 27 for 3-D meshes).

:class:`~repro.tables.interval.IntervalRoutingTable` (Transputer C-104
style) is included as the deterministic low-storage alternative discussed
in Section 5.1.2, and :mod:`repro.tables.cost_model` reproduces the
storage/scalability comparison of Table 5.
"""

from repro.tables.base import RoutingTable, TableProgrammingError
from repro.tables.cost_model import TableCostModel, TableCostSummary, table_cost_summary
from repro.tables.economical import EconomicalStorageTable
from repro.tables.full_table import FullRoutingTable
from repro.tables.interval import IntervalRoutingTable
from repro.tables.mappings import (
    BlockClusterMapping,
    ClusterMapping,
    RowClusterMapping,
)
from repro.tables.meta_table import MetaRoutingTable
from repro.tables.validation import (
    channel_dependency_graph,
    check_connectivity,
    check_minimality,
    escape_subfunction_is_deadlock_free,
    is_deadlock_free,
)

__all__ = [
    "BlockClusterMapping",
    "ClusterMapping",
    "EconomicalStorageTable",
    "FullRoutingTable",
    "IntervalRoutingTable",
    "MetaRoutingTable",
    "RoutingTable",
    "RowClusterMapping",
    "TableCostModel",
    "TableCostSummary",
    "TableProgrammingError",
    "channel_dependency_graph",
    "check_connectivity",
    "check_minimality",
    "escape_subfunction_is_deadlock_free",
    "is_deadlock_free",
    "table_cost_summary",
]


# -- registry factories --------------------------------------------------------------

from repro.registry import register as _register  # noqa: E402


@_register("table", "full")
def _make_full(topology, config) -> FullRoutingTable:
    """One table entry per destination node (Cray T3D/T3E organisation)."""
    return FullRoutingTable(topology)


@_register("table", "economical")
def _make_economical(topology, config) -> EconomicalStorageTable:
    """The paper's 3^n-entry sign-indexed economical-storage table."""
    return EconomicalStorageTable(topology)


@_register("table", "meta-row")
def _make_meta_row(topology, config) -> MetaRoutingTable:
    """Two-level meta-table with the row cluster mapping (minimal adaptivity)."""
    return MetaRoutingTable(topology, RowClusterMapping(topology))


@_register("table", "meta-block")
def _make_meta_block(topology, config) -> MetaRoutingTable:
    """Two-level meta-table with the block cluster mapping (maximal adaptivity)."""
    return MetaRoutingTable(topology, BlockClusterMapping(topology))


@_register("table", "interval")
def _make_interval(topology, config) -> IntervalRoutingTable:
    """Deterministic interval routing (Transputer C-104 style)."""
    return IntervalRoutingTable(topology)
