"""Routing-table implementations (Section 5 of the paper).

Adaptive table-based routing needs multiple candidate output ports per
destination, which inflates the routing-table RAM.  The paper compares
three storage organisations, all of which are implemented here:

* :class:`~repro.tables.full_table.FullRoutingTable` -- one entry per
  destination node (the Cray T3D/T3E / Sun S3.mp organisation).
* :class:`~repro.tables.meta_table.MetaRoutingTable` -- a two-level
  hierarchical (cluster / sub-cluster) organisation (SGI SPIDER,
  Servernet-II), with the two cluster mappings of the paper's Fig. 8.
* :class:`~repro.tables.economical.EconomicalStorageTable` -- the paper's
  proposal: a 3^n-entry table indexed by the sign of the per-dimension
  offset to the destination (9 entries for 2-D, 27 for 3-D meshes).

:class:`~repro.tables.interval.IntervalRoutingTable` (Transputer C-104
style) is included as the deterministic low-storage alternative discussed
in Section 5.1.2, and :mod:`repro.tables.cost_model` reproduces the
storage/scalability comparison of Table 5.
"""

from repro.tables.base import RoutingTable, TableProgrammingError
from repro.tables.cost_model import TableCostModel, TableCostSummary, table_cost_summary
from repro.tables.economical import EconomicalStorageTable
from repro.tables.full_table import FullRoutingTable
from repro.tables.interval import IntervalRoutingTable
from repro.tables.mappings import (
    BlockClusterMapping,
    ClusterMapping,
    RowClusterMapping,
)
from repro.tables.meta_table import MetaRoutingTable
from repro.tables.validation import (
    channel_dependency_graph,
    check_connectivity,
    check_minimality,
    escape_subfunction_is_deadlock_free,
    is_deadlock_free,
)

__all__ = [
    "BlockClusterMapping",
    "ClusterMapping",
    "EconomicalStorageTable",
    "FullRoutingTable",
    "IntervalRoutingTable",
    "MetaRoutingTable",
    "RoutingTable",
    "RowClusterMapping",
    "TableCostModel",
    "TableCostSummary",
    "TableProgrammingError",
    "channel_dependency_graph",
    "check_connectivity",
    "check_minimality",
    "escape_subfunction_is_deadlock_free",
    "is_deadlock_free",
    "table_cost_summary",
]
