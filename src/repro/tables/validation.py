"""Routing-relation validation: connectivity, minimality, deadlock freedom.

Table-based routers are only as correct as the tables written into them,
so the library ships the checks a system programmer would run before
deploying a table image:

* :func:`check_connectivity` -- every source can reach every destination by
  repeatedly following the table (no dead ends, no loops);
* :func:`check_minimality` -- every permitted port lies on a minimal path
  (the property the economical-storage encoding relies on);
* :func:`channel_dependency_graph` / :func:`is_deadlock_free` -- the
  classic channel-dependency-graph test [Dally & Seitz]: a routing relation
  confined to a single virtual-channel class is deadlock free iff the graph
  of "holding channel A can wait for channel B" dependencies is acyclic.
  Duato's methodology only requires this of the *escape* subfunction
  (dimension-order routing here), which is what
  :func:`escape_subfunction_is_deadlock_free` checks.
* :func:`dateline_channel_dependency_graph` -- the virtual-channel-class
  aware variant for wrapping topologies: nodes are ``(router, port,
  dateline class)`` triples and the per-dimension dateline mask a header
  accumulates along its route selects the class of every dependency, so
  the check proves the *discipline* acyclic, not just the port relation.
  :func:`escape_subfunction_is_deadlock_free` dispatches on the
  topology's actual escape discipline: single-class dimension order on
  meshes, the dateline classes on tori.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.network.topology import LOCAL_PORT, Topology, port_direction
from repro.routing.providers import dimension_order_provider
from repro.tables.base import RoutingTable

__all__ = [
    "channel_dependency_graph",
    "check_connectivity",
    "check_minimality",
    "dateline_channel_dependency_graph",
    "escape_subfunction_is_deadlock_free",
    "is_deadlock_free",
]

#: A channel is identified by the (router, output port) pair that drives it.
Channel = Tuple[int, int]


def _lookup_function(table_or_provider) -> Callable[[int, int], Tuple[int, ...]]:
    """Accept either a RoutingTable or a plain provider function."""
    if isinstance(table_or_provider, RoutingTable):
        return table_or_provider.lookup
    return table_or_provider


def check_connectivity(
    table_or_provider, topology: Topology, max_hops: int = None
) -> List[str]:
    """Verify every (source, destination) pair is routable.

    Follows *every* permitted port at every step (the adversarial case for
    an adaptive relation) and reports pairs that can loop or exceed
    ``max_hops``.  Returns a list of human-readable problems (empty when
    the relation is sound).
    """
    lookup = _lookup_function(table_or_provider)
    if max_hops is None:
        max_hops = 4 * topology.num_nodes
    problems: List[str] = []
    for destination in range(topology.num_nodes):
        # Breadth-first over "frontier of nodes still heading to destination",
        # tracking the worst-case number of hops taken so far.
        depth: Dict[int, int] = {}
        frontier = [
            node for node in range(topology.num_nodes) if node != destination
        ]
        for node in frontier:
            depth[node] = 0
        pending = list(frontier)
        while pending:
            node = pending.pop()
            if depth[node] > max_hops:
                problems.append(
                    f"route toward {destination} exceeds {max_hops} hops at node {node}"
                )
                continue
            ports = lookup(node, destination)
            if not ports:
                problems.append(f"no route from {node} to {destination}")
                continue
            for port in ports:
                if port == LOCAL_PORT:
                    if node != destination:
                        problems.append(
                            f"premature local exit at {node} heading to {destination}"
                        )
                    continue
                neighbor = topology.neighbor(node, port)
                if neighbor is None:
                    problems.append(
                        f"port {port} at node {node} leads off the network "
                        f"(destination {destination})"
                    )
                    continue
                if neighbor == destination:
                    continue
                next_depth = depth[node] + 1
                if neighbor not in depth or next_depth > depth[neighbor]:
                    depth[neighbor] = next_depth
                    if next_depth <= max_hops:
                        pending.append(neighbor)
                    else:
                        problems.append(
                            f"route toward {destination} exceeds {max_hops} hops "
                            f"at node {neighbor}"
                        )
    return problems


def check_minimality(table_or_provider, topology: Topology) -> List[str]:
    """Verify every permitted port lies on a minimal path.

    Returns a list of violations (empty for minimal relations).  Interval
    routing, which is tree-based and generally non-minimal, is expected to
    fail this check -- that is precisely the paper's criticism of it.
    """
    lookup = _lookup_function(table_or_provider)
    problems: List[str] = []
    for source in range(topology.num_nodes):
        for destination in range(topology.num_nodes):
            if source == destination:
                continue
            base_distance = topology.distance(source, destination)
            for port in lookup(source, destination):
                if port == LOCAL_PORT:
                    problems.append(
                        f"local port offered at {source} for remote destination {destination}"
                    )
                    continue
                neighbor = topology.neighbor(source, port)
                if neighbor is None or topology.distance(neighbor, destination) != base_distance - 1:
                    problems.append(
                        f"port {port} at {source} toward {destination} is not minimal"
                    )
    return problems


def channel_dependency_graph(
    topology: Topology, table_or_provider
) -> "nx.DiGraph":
    """Build the channel dependency graph of a single-class routing relation.

    Nodes are physical channels identified by (router, output port).  There
    is an edge from channel ``c1 = (u -> v)`` to channel ``c2 = (v -> w)``
    when some destination ``d`` exists for which the relation routes a
    message out of ``u`` over ``c1`` *and* out of ``v`` over ``c2`` -- i.e.
    a message heading to ``d`` can hold ``c1`` while requesting ``c2``.
    """
    lookup = _lookup_function(table_or_provider)
    graph = nx.DiGraph()
    for node, port, neighbor, _ in topology.links():
        graph.add_node((node, port))
    for node, port, neighbor, _ in topology.links():
        holding: Channel = (node, port)
        for destination in range(topology.num_nodes):
            if destination == neighbor or destination == node:
                continue
            # The message only holds this channel if the relation actually
            # routes it over this channel toward the destination.
            if port not in lookup(node, destination):
                continue
            for next_port in lookup(neighbor, destination):
                if next_port == LOCAL_PORT:
                    continue
                if topology.neighbor(neighbor, next_port) is None:
                    continue
                graph.add_edge(holding, (neighbor, next_port))
    return graph


def dateline_channel_dependency_graph(
    topology: Topology, table_or_provider
) -> "nx.DiGraph":
    """Build the dateline-class-aware channel dependency graph.

    Nodes are ``(router, output port, dateline class)`` triples -- the
    virtual-channel classes the dateline escape discipline actually
    allocates from.  Edges follow the per-dimension dateline mask a
    header accumulates along its route: a message holds channel
    ``(u, p)`` in the class its *pre-crossing* mask selects for ``p``'s
    dimension, crossing ``u``'s dateline link (if any) sets that
    dimension's bit, and the next request at ``v`` reads the updated
    mask -- exactly the allocation/forward order of the router cores.
    Reachable ``(node, mask)`` states are enumerated per destination, so
    adaptive relations (which branch the mask evolution) are handled
    exactly; masks are bounded by ``2 ** ndims``.
    """
    lookup = _lookup_function(table_or_provider)
    graph = nx.DiGraph()
    for node, port, _neighbor, _ in topology.links():
        for dateline_class in (0, 1):
            graph.add_node((node, port, dateline_class))
    num_nodes = topology.num_nodes
    for destination in range(num_nodes):
        pending = [(node, 0) for node in range(num_nodes) if node != destination]
        seen = set(pending)
        while pending:
            node, mask = pending.pop()
            for port in lookup(node, destination):
                if port == LOCAL_PORT:
                    continue
                neighbor = topology.neighbor(node, port)
                if neighbor is None:
                    continue
                dimension = port_direction(port)[0]
                holding = (node, port, (mask >> dimension) & 1)
                next_mask = mask | topology.dateline_bits(node, port)
                if neighbor == destination:
                    continue
                state = (neighbor, next_mask)
                if state not in seen:
                    seen.add(state)
                    pending.append(state)
                for next_port in lookup(neighbor, destination):
                    if next_port == LOCAL_PORT:
                        continue
                    if topology.neighbor(neighbor, next_port) is None:
                        continue
                    next_dimension = port_direction(next_port)[0]
                    graph.add_edge(
                        holding,
                        (
                            neighbor,
                            next_port,
                            (next_mask >> next_dimension) & 1,
                        ),
                    )
    return graph


def is_deadlock_free(
    topology: Topology, table_or_provider, *, dateline_classes: bool = False
) -> bool:
    """True when the relation's channel dependency graph is acyclic.

    This is the Dally/Seitz condition for routing relations confined to a
    single (virtual-)channel class.  Unrestricted minimal adaptive routing
    on a mesh fails it -- which is exactly why Duato's algorithm adds the
    escape channels checked by :func:`escape_subfunction_is_deadlock_free`.
    With ``dateline_classes=True`` the test runs over the
    :func:`dateline_channel_dependency_graph` instead, verifying the
    two-class dateline discipline (required on wrapping topologies,
    whose single-class graph is cyclic by construction).
    """
    if dateline_classes:
        graph = dateline_channel_dependency_graph(topology, table_or_provider)
    else:
        graph = channel_dependency_graph(topology, table_or_provider)
    return nx.is_directed_acyclic_graph(graph)


def escape_subfunction_is_deadlock_free(
    topology: Topology, *, dateline_classes: Optional[bool] = None
) -> bool:
    """Check the escape subfunction Duato routing actually uses here.

    The escape relation is dimension-order routing; the discipline it
    runs under depends on the topology, and the check dispatches to
    match: single-class on meshes, the two dateline classes on wrapping
    topologies.  Pass ``dateline_classes`` explicitly to override the
    dispatch -- e.g. ``dateline_classes=False`` on a torus shows the
    wraparound rings make the *undisciplined* subfunction cyclic, which
    is exactly why the datelines are required.
    """
    if dateline_classes is None:
        dateline_classes = topology.wraps
    return is_deadlock_free(
        topology,
        dimension_order_provider(topology),
        dateline_classes=dateline_classes,
    )
