"""Full-table routing: one entry per destination node.

This is the organisation used by the Cray T3D/T3E and Sun S3.mp routers
(Table 1 of the paper).  It offers complete per-destination flexibility at
a storage cost proportional to the maximum network size, which is exactly
what the economical-storage proposal attacks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.network.topology import LOCAL_PORT, Topology
from repro.routing.providers import PortProvider, minimal_adaptive_provider
from repro.tables.base import RoutingTable, TableProgrammingError

__all__ = ["FullRoutingTable"]


class FullRoutingTable(RoutingTable):
    """A per-router table with one (multi-port) entry per destination node.

    Parameters
    ----------
    topology:
        Network the table is programmed for.
    provider:
        Routing relation used to program the entries.  Defaults to minimal
        fully adaptive routing, the relation used on the adaptive virtual
        channels throughout the paper's evaluation.
    """

    name = "full-table"

    def __init__(self, topology: Topology, provider: PortProvider = None) -> None:
        if provider is None:
            provider = minimal_adaptive_provider(topology)
        self._topology = topology
        self._num_nodes = topology.num_nodes
        # _entries[current][destination] -> tuple of candidate ports.
        self._entries: List[List[Tuple[int, ...]]] = []
        for current in range(self._num_nodes):
            row: List[Tuple[int, ...]] = []
            for destination in range(self._num_nodes):
                ports = tuple(provider(current, destination))
                if not ports:
                    raise TableProgrammingError(
                        f"provider returned no ports for {current}->{destination}"
                    )
                row.append(ports)
            self._entries.append(row)

    @property
    def topology(self) -> Topology:
        """Topology this table was programmed for."""
        return self._topology

    def lookup(self, current: int, destination: int) -> Tuple[int, ...]:
        return self._entries[current][destination]

    def entries_per_router(self) -> int:
        return self._num_nodes

    def num_routers(self) -> int:
        return self._num_nodes

    def reprogram(self, current: int, destination: int, ports: Tuple[int, ...]) -> None:
        """Overwrite a single table entry (tables are software programmable).

        Raises :class:`TableProgrammingError` for empty entries or entries
        naming ports the router does not have.
        """
        if not ports:
            raise TableProgrammingError("a table entry needs at least one port")
        for port in ports:
            if not 0 <= port < self._topology.radix:
                raise TableProgrammingError(
                    f"port {port} does not exist on a radix-{self._topology.radix} router"
                )
        if destination == current and tuple(ports) != (LOCAL_PORT,):
            raise TableProgrammingError(
                "the entry for the local node must name the local port only"
            )
        self._entries[current][destination] = tuple(ports)
        self._notify_reprogrammed()
