"""Two-level hierarchical (meta-table) routing (Section 5.1.1 of the paper).

A meta-table router keeps two tables:

* an **intra-cluster table** with one (multi-port) entry per sub-cluster
  id, consulted when the destination lies in the router's own cluster; and
* a **cluster table** with one (multi-port) entry per remote cluster,
  consulted for every destination outside the router's cluster.

Because a single cluster-table entry must serve *every* node of the remote
cluster, the entry can only name ports that are productive toward all of
them -- the intersection of the underlying routing relation over the
cluster's members.  This is where adaptivity is lost: once a message is in
a cluster that is aligned with its destination cluster in one dimension,
only a single direction remains and all traffic funnels onto the cluster
boundary links (the congestion effect the paper reports in Table 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.topology import LOCAL_PORT, Topology
from repro.routing.providers import PortProvider, minimal_adaptive_provider
from repro.tables.base import RoutingTable, TableProgrammingError
from repro.tables.mappings import ClusterMapping

__all__ = ["MetaRoutingTable"]


class MetaRoutingTable(RoutingTable):
    """Two-level hierarchical routing table.

    Parameters
    ----------
    topology:
        Network the table is programmed for.
    mapping:
        Partition of nodes into clusters (see :mod:`repro.tables.mappings`).
    provider:
        Routing relation to compress into the hierarchy.  Defaults to
        minimal fully adaptive routing.
    """

    name = "meta-table"

    def __init__(
        self,
        topology: Topology,
        mapping: ClusterMapping,
        provider: Optional[PortProvider] = None,
    ) -> None:
        if provider is None:
            provider = minimal_adaptive_provider(topology)
        mapping.validate()
        self._topology = topology
        self._mapping = mapping
        # Pre-compute cluster membership once; it is needed per node below.
        members: Dict[int, Tuple[int, ...]] = {
            cluster: mapping.nodes_in_cluster(cluster)
            for cluster in range(mapping.num_clusters)
        }
        self._intra: List[Dict[int, Tuple[int, ...]]] = []
        self._inter: List[Dict[int, Tuple[int, ...]]] = []
        for node in range(topology.num_nodes):
            self._intra.append(self._program_intra(node, provider))
            self._inter.append(self._program_inter(node, provider, members))

    def _program_intra(
        self, node: int, provider: PortProvider
    ) -> Dict[int, Tuple[int, ...]]:
        """Full per-destination entries for the router's own cluster."""
        table: Dict[int, Tuple[int, ...]] = {}
        own_cluster = self._mapping.cluster_of(node)
        for destination in self._mapping.nodes_in_cluster(own_cluster):
            subcluster = self._mapping.subcluster_of(destination)
            ports = tuple(provider(node, destination))
            if not ports:
                raise TableProgrammingError(
                    f"provider returned no ports for {node}->{destination}"
                )
            table[subcluster] = ports
        return table

    def _program_inter(
        self,
        node: int,
        provider: PortProvider,
        members: Dict[int, Tuple[int, ...]],
    ) -> Dict[int, Tuple[int, ...]]:
        """One entry per remote cluster: ports productive toward the whole cluster."""
        table: Dict[int, Tuple[int, ...]] = {}
        own_cluster = self._mapping.cluster_of(node)
        for cluster in range(self._mapping.num_clusters):
            if cluster == own_cluster:
                continue
            common: Optional[set] = None
            for destination in members[cluster]:
                ports = set(provider(node, destination)) - {LOCAL_PORT}
                common = ports if common is None else (common & ports)
            if not common:
                # Fall back to the ports leading toward the nearest member of
                # the cluster.  This keeps routing connected for exotic
                # mappings; the row and block mappings of the paper never
                # need it.
                nearest = min(
                    members[cluster], key=lambda d: self._topology.distance(node, d)
                )
                common = set(self._topology.minimal_ports(node, nearest))
            table[cluster] = tuple(sorted(common))
        return table

    # -- RoutingTable interface ---------------------------------------------

    @property
    def topology(self) -> Topology:
        """Topology this table was programmed for."""
        return self._topology

    @property
    def mapping(self) -> ClusterMapping:
        """Cluster mapping used by the hierarchy."""
        return self._mapping

    def lookup(self, current: int, destination: int) -> Tuple[int, ...]:
        own_cluster = self._mapping.cluster_of(current)
        destination_cluster = self._mapping.cluster_of(destination)
        if destination_cluster == own_cluster:
            return self._intra[current][self._mapping.subcluster_of(destination)]
        return self._inter[current][destination_cluster]

    def entries_per_router(self) -> int:
        # One entry per sub-cluster plus one per remote cluster (the entry
        # for the local cluster is the intra table itself).
        return self._mapping.cluster_size + (self._mapping.num_clusters - 1)

    def num_routers(self) -> int:
        return self._topology.num_nodes

    def cluster_entry(self, node: int, cluster: int) -> Tuple[int, ...]:
        """Direct access to a router's entry for a remote cluster."""
        return self._inter[node][cluster]

    def intra_entry(self, node: int, subcluster: int) -> Tuple[int, ...]:
        """Direct access to a router's entry for a sub-cluster of its own cluster."""
        return self._intra[node][subcluster]
