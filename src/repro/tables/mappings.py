"""Cluster mappings for hierarchical (meta-table) routing.

Meta-table routing partitions the nodes of the network into clusters; the
router keeps a full intra-cluster table plus a single entry per remote
cluster.  How the node-id space is carved into clusters determines how
much routing flexibility survives the compression.  The paper's Fig. 8
compares two mappings for a 256-node mesh:

* a **row mapping** (Fig. 8a) where every cluster is one row of the mesh
  and the clusters stack into a single column -- the "minimal adaptivity"
  mapping, which degenerates to deterministic dimension-order routing; and
* a **block mapping** (Fig. 8b) where every cluster is a square sub-mesh
  and the clusters themselves form a square grid -- the "maximal
  adaptivity" mapping.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.network.topology import Topology

__all__ = ["ClusterMapping", "RowClusterMapping", "BlockClusterMapping"]


class ClusterMapping(ABC):
    """Partition of a topology's nodes into clusters and sub-clusters."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """Topology being partitioned."""
        return self._topology

    @property
    @abstractmethod
    def num_clusters(self) -> int:
        """Number of clusters in the partition."""

    @property
    @abstractmethod
    def cluster_size(self) -> int:
        """Number of nodes in each cluster (all clusters are equal sized)."""

    @abstractmethod
    def cluster_of(self, node: int) -> int:
        """Cluster identifier of ``node``."""

    @abstractmethod
    def subcluster_of(self, node: int) -> int:
        """Sub-cluster identifier (index of ``node`` within its cluster)."""

    def nodes_in_cluster(self, cluster: int) -> Tuple[int, ...]:
        """All nodes belonging to ``cluster`` (ordered by sub-cluster id)."""
        members: List[Tuple[int, int]] = []
        for node in range(self._topology.num_nodes):
            if self.cluster_of(node) == cluster:
                members.append((self.subcluster_of(node), node))
        members.sort()
        return tuple(node for _, node in members)

    def node_for(self, cluster: int, subcluster: int) -> int:
        """Node identified by a (cluster, sub-cluster) pair."""
        for node in range(self._topology.num_nodes):
            if self.cluster_of(node) == cluster and self.subcluster_of(node) == subcluster:
                return node
        raise ValueError(f"no node has cluster={cluster}, subcluster={subcluster}")

    def validate(self) -> None:
        """Check the mapping is a proper partition with unique sub-cluster ids."""
        seen = set()
        for node in range(self._topology.num_nodes):
            cluster = self.cluster_of(node)
            subcluster = self.subcluster_of(node)
            if not 0 <= cluster < self.num_clusters:
                raise ValueError(f"node {node} mapped to invalid cluster {cluster}")
            if not 0 <= subcluster < self.cluster_size:
                raise ValueError(
                    f"node {node} mapped to invalid sub-cluster {subcluster}"
                )
            key = (cluster, subcluster)
            if key in seen:
                raise ValueError(f"duplicate (cluster, subcluster) pair {key}")
            seen.add(key)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(clusters={self.num_clusters}, "
            f"cluster_size={self.cluster_size})"
        )


class RowClusterMapping(ClusterMapping):
    """One cluster per row: the paper's minimal-adaptivity mapping (Fig. 8a).

    All nodes of a cluster share a Y coordinate, so intra-cluster routing
    has no freedom (a single row) and inter-cluster routing only ever moves
    along Y; the combination is deterministic dimension-order routing.
    """

    def __init__(self, topology: Topology) -> None:
        if topology.n_dims != 2:
            raise ValueError("RowClusterMapping is defined for 2-D topologies")
        super().__init__(topology)

    @property
    def num_clusters(self) -> int:
        return self._topology.dims[1]

    @property
    def cluster_size(self) -> int:
        return self._topology.dims[0]

    def cluster_of(self, node: int) -> int:
        return self._topology.coordinates(node)[1]

    def subcluster_of(self, node: int) -> int:
        return self._topology.coordinates(node)[0]


class BlockClusterMapping(ClusterMapping):
    """Square-block clusters: the paper's maximal-adaptivity mapping (Fig. 8b).

    Each cluster is a ``block_x`` x ``block_y`` sub-mesh, and the clusters
    themselves tile the mesh as a grid, so both intra- and inter-cluster
    routing retain two-dimensional freedom -- until a message reaches a
    cluster adjacent to its destination cluster, where the single
    cluster-table entry collapses the choice to one direction (the source
    of the congestion the paper reports in Table 4).
    """

    def __init__(self, topology: Topology, block_dims: Sequence[int] = None) -> None:
        if topology.n_dims != 2:
            raise ValueError("BlockClusterMapping is defined for 2-D topologies")
        super().__init__(topology)
        width, height = topology.dims
        if block_dims is None:
            block_dims = (self._default_block(width), self._default_block(height))
        self._block = (int(block_dims[0]), int(block_dims[1]))
        if width % self._block[0] or height % self._block[1]:
            raise ValueError(
                f"block {self._block} does not tile a {width}x{height} mesh"
            )
        self._grid = (width // self._block[0], height // self._block[1])

    @staticmethod
    def _default_block(extent: int) -> int:
        """Divisor of ``extent`` closest to its square root (ties go larger).

        For the paper's 16-wide mesh this picks 4, giving the 4x4 blocks of
        Fig. 8(b).
        """
        divisors = [d for d in range(1, extent + 1) if extent % d == 0]
        target = math.sqrt(extent)
        return min(divisors, key=lambda d: (abs(d - target), -d))

    @property
    def block_dims(self) -> Tuple[int, int]:
        """Extent of each cluster block in (x, y)."""
        return self._block

    @property
    def grid_dims(self) -> Tuple[int, int]:
        """Number of cluster blocks along (x, y)."""
        return self._grid

    @property
    def num_clusters(self) -> int:
        return self._grid[0] * self._grid[1]

    @property
    def cluster_size(self) -> int:
        return self._block[0] * self._block[1]

    def cluster_of(self, node: int) -> int:
        x, y = self._topology.coordinates(node)
        cluster_x = x // self._block[0]
        cluster_y = y // self._block[1]
        return cluster_x + cluster_y * self._grid[0]

    def subcluster_of(self, node: int) -> int:
        x, y = self._topology.coordinates(node)
        local_x = x % self._block[0]
        local_y = y % self._block[1]
        return local_x + local_y * self._block[0]
