"""Analytic storage-cost model for routing-table organisations (Table 5).

Table 5 of the paper compares full-table, m-level meta-table, interval and
economical-storage routing for a 2^N-node network along five axes: table
size, scalability, adaptivity, topology coverage and lookup time.  This
module reproduces the quantitative column (table size) exactly and encodes
the qualitative columns so the comparison table can be regenerated
programmatically by ``benchmarks/bench_table5_cost_model.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TableCostModel", "TableCostSummary", "table_cost_summary"]


@dataclass(frozen=True)
class TableCostSummary:
    """One row of the Table 5 comparison."""

    scheme: str
    entries_per_router: int
    scalability: str
    adaptivity: str
    topologies: str
    lookup_time: str
    commercial_examples: str

    def as_row(self) -> Dict[str, object]:
        """Dictionary form used by report printers."""
        return {
            "scheme": self.scheme,
            "entries_per_router": self.entries_per_router,
            "scalability": self.scalability,
            "adaptivity": self.adaptivity,
            "topologies": self.topologies,
            "lookup_time": self.lookup_time,
            "commercial_examples": self.commercial_examples,
        }


class TableCostModel:
    """Storage cost of the four table organisations for a given network.

    Parameters
    ----------
    num_nodes:
        Network size (the paper uses 2^N nodes).
    n_dims:
        Mesh dimensionality (for the economical-storage 3^n size).
    num_ports:
        Router radix (for the interval-routing size).
    meta_levels:
        Number of levels in the hierarchical organisation (2 for SPIDER,
        3 for Servernet-II).
    """

    def __init__(
        self,
        num_nodes: int,
        n_dims: int = 2,
        num_ports: Optional[int] = None,
        meta_levels: int = 2,
    ) -> None:
        if num_nodes < 2:
            raise ValueError("a network needs at least 2 nodes")
        if n_dims < 1:
            raise ValueError("meshes need at least 1 dimension")
        if meta_levels < 2:
            raise ValueError("a hierarchical table needs at least 2 levels")
        self._num_nodes = num_nodes
        self._n_dims = n_dims
        self._num_ports = num_ports if num_ports is not None else 1 + 2 * n_dims
        self._meta_levels = meta_levels

    @property
    def num_nodes(self) -> int:
        """Network size the model describes."""
        return self._num_nodes

    def full_table_entries(self) -> int:
        """Full-table routing: one entry per destination node."""
        return self._num_nodes

    def meta_table_entries(self, levels: Optional[int] = None) -> int:
        """m-level meta-table: m tables of N^(1/m) entries each.

        This is the ``m * 2^(N/m)`` expression of Table 5 written for a
        general node count; fractional roots are rounded up because a table
        cannot have a fractional entry.
        """
        levels = levels if levels is not None else self._meta_levels
        per_level = math.ceil(self._num_nodes ** (1.0 / levels))
        return levels * per_level

    def interval_entries(self) -> int:
        """Interval routing: one entry per router port."""
        return self._num_ports

    def economical_storage_entries(self) -> int:
        """Economical storage: 3^n entries for an n-dimensional mesh."""
        return 3 ** self._n_dims

    def summaries(self) -> List[TableCostSummary]:
        """All four rows of the Table 5 comparison for this network."""
        return [
            TableCostSummary(
                scheme="full-table",
                entries_per_router=self.full_table_entries(),
                scalability="poor",
                adaptivity="yes",
                topologies="arbitrary",
                lookup_time="possibly high (proportional to table size)",
                commercial_examples="Cray T3D, Cray T3E, Sun S3.mp",
            ),
            TableCostSummary(
                scheme=f"{self._meta_levels}-level meta-table",
                entries_per_router=self.meta_table_entries(),
                scalability="better",
                adaptivity="yes (limited)",
                topologies="fairly arbitrary",
                lookup_time="low",
                commercial_examples="SGI SPIDER (2-level), Servernet-II (3-level)",
            ),
            TableCostSummary(
                scheme="interval",
                entries_per_router=self.interval_entries(),
                scalability="great",
                adaptivity="not direct",
                topologies="arbitrary",
                lookup_time="small",
                commercial_examples="Inmos C-104 / Transputer",
            ),
            TableCostSummary(
                scheme="economical-storage",
                entries_per_router=self.economical_storage_entries(),
                scalability="great",
                adaptivity="yes",
                topologies="meshes, tori, irregular extensions",
                lookup_time="small",
                commercial_examples="none (proposed by the paper)",
            ),
        ]


def table_cost_summary(
    num_nodes: int,
    n_dims: int = 2,
    num_ports: Optional[int] = None,
    meta_levels: int = 2,
) -> List[TableCostSummary]:
    """Convenience wrapper returning the Table 5 rows for one network size."""
    model = TableCostModel(
        num_nodes=num_nodes,
        n_dims=n_dims,
        num_ports=num_ports,
        meta_levels=meta_levels,
    )
    return model.summaries()
