"""Routing-algorithm interface used by the router's decision block.

A routing algorithm answers two questions for the router:

1. How are the virtual channels of every physical channel partitioned into
   *adaptive* channels and *escape* channels (:class:`VirtualChannelClasses`)?
   Duato's theory of deadlock-free adaptive routing requires the escape
   channels to implement a deadlock-free (here: dimension-order) subfunction
   while the adaptive channels may follow any minimal relation.
2. Which output ports may a header take at the current router toward its
   destination (:class:`RouteDecision`)?  The adaptive ports typically come
   from a routing-table lookup, while the escape port is the dimension-order
   port.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "RouteDecision",
    "RoutingAlgorithm",
    "VirtualChannelClasses",
    "dateline_escape_classes",
]


def dateline_escape_classes(
    escape_vcs: Tuple[int, ...]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split escape virtual channels into the two dateline classes.

    Class 0 serves messages that have not yet crossed the dateline of the
    dimension they are escaping on, class 1 those that have.  An odd VC
    count gives the extra channel to class 0, where every message starts.
    Needs at least two escape VCs -- one per class -- to be expressible.
    """
    if len(escape_vcs) < 2:
        raise ValueError(
            "the dateline discipline needs at least 2 escape virtual "
            f"channels (one per dateline class), got {len(escape_vcs)}"
        )
    split = (len(escape_vcs) + 1) // 2
    return escape_vcs[:split], escape_vcs[split:]


@dataclass(frozen=True)
class RouteDecision:
    """Output-port choices for one (current node, destination) pair.

    ``adaptive_ports`` are the ports a message may take on an *adaptive*
    virtual channel; ``escape_port`` is the single port usable on an
    *escape* virtual channel.  For deterministic algorithms the two
    coincide.
    """

    adaptive_ports: Tuple[int, ...]
    escape_port: int

    @property
    def all_ports(self) -> Tuple[int, ...]:
        """Every distinct port mentioned by this decision."""
        if self.escape_port in self.adaptive_ports:
            return self.adaptive_ports
        return self.adaptive_ports + (self.escape_port,)


@dataclass(frozen=True)
class VirtualChannelClasses:
    """Partition of a physical channel's virtual channels into classes.

    ``escape_classes`` is the dateline sub-partition of the escape
    channels used on wrapping topologies: a ``(class0, class1)`` pair of
    disjoint VC tuples covering ``escape_vcs`` exactly.  Messages request
    class 0 until their route has crossed the dateline of the escaping
    dimension, class 1 afterwards.  ``None`` (meshes) means the escape
    pool is undivided.
    """

    adaptive_vcs: Tuple[int, ...]
    escape_vcs: Tuple[int, ...]
    escape_classes: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None

    def __post_init__(self) -> None:
        overlap = set(self.adaptive_vcs) & set(self.escape_vcs)
        if overlap:
            raise ValueError(f"virtual channels {sorted(overlap)} assigned to two classes")
        if self.escape_classes is not None:
            class0, class1 = self.escape_classes
            if not class0 or not class1:
                raise ValueError("both dateline escape classes need at least one VC")
            if sorted(class0 + class1) != sorted(self.escape_vcs):
                raise ValueError(
                    "dateline escape classes must partition the escape VCs: "
                    f"{class0} + {class1} != {self.escape_vcs}"
                )

    @property
    def total(self) -> int:
        """Total number of virtual channels described by this partition."""
        return len(self.adaptive_vcs) + len(self.escape_vcs)


class RoutingAlgorithm(ABC):
    """Run-time routing decision logic for a single network."""

    #: Human-readable name used in experiment reports.
    name: str = "routing"

    @property
    @abstractmethod
    def min_virtual_channels(self) -> int:
        """Minimum number of virtual channels per physical channel required
        for deadlock freedom."""

    @abstractmethod
    def vc_classes(self, vcs_per_port: int) -> VirtualChannelClasses:
        """Partition ``vcs_per_port`` virtual channels into adaptive/escape
        classes."""

    @abstractmethod
    def decide(self, current: int, destination: int) -> RouteDecision:
        """Output-port choices for a header at ``current`` heading to
        ``destination``."""

    def decision_cache(self) -> dict:
        """A ``(current, destination) -> RouteDecision`` memo shared by
        every router of the network.

        :meth:`decide` is a pure function of the topology and the
        currently programmed table, and :class:`RouteDecision` is frozen,
        so the routers and network interfaces consult this cache on their
        hot paths instead of re-deriving the same decision per header per
        retry.  The dict lives on the algorithm instance -- one network
        shares one instance -- and is bounded by the number of (node,
        destination) pairs.

        Tables are software programmable: when the algorithm reads a
        :class:`~repro.tables.base.RoutingTable`, the memo registers for
        its reprogramming notifications and is cleared in place (every
        holder shares the same dict object) the moment an entry is
        overwritten, so post-construction ``reprogram`` calls are never
        served stale decisions.
        """
        cache = getattr(self, "_decision_memo", None)
        if cache is None:
            cache = {}
            self._decision_memo = cache
            # Hook the table's reprogramming notifications.  Try the
            # public ``table`` attribute/property first so plugin
            # algorithms that expose their table conventionally are
            # covered too, then the built-ins' private ``_table``.
            table = getattr(self, "table", None)
            if table is None:
                table = getattr(self, "_table", None)
            on_reprogram = getattr(table, "on_reprogram", None)
            if callable(on_reprogram):
                on_reprogram(cache.clear)
        return cache

    def decide_cached(self, current: int, destination: int) -> RouteDecision:
        """Memoized :meth:`decide` -- the single lookup the routers and
        network interfaces share on their hot paths (see
        :meth:`decision_cache` for the purity and invalidation contract).
        """
        cache = self.decision_cache()
        key = (current, destination)
        decision = cache.get(key)
        if decision is None:
            decision = self.decide(current, destination)
            cache[key] = decision
        return decision

    def validate(self, vcs_per_port: int) -> None:
        """Raise ``ValueError`` if the router configuration cannot support
        this algorithm."""
        if vcs_per_port < self.min_virtual_channels:
            raise ValueError(
                f"{self.name} requires at least {self.min_virtual_channels} "
                f"virtual channels per physical channel, got {vcs_per_port}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
