"""Deterministic dimension-order (XY) routing.

The oblivious baseline of the paper's Figure 5: a message fully corrects
its offset in dimension 0 (X) before moving in dimension 1 (Y), and so on.
Dimension-order routing is deadlock free on a mesh with a single virtual
channel, so every virtual channel may carry it.

On a torus the wraparound links close a cyclic dependency per dimension,
so the virtual channels additionally follow the dateline discipline: all
VCs become escape channels split into two dateline classes, a message
uses class 0 until its route crosses the dateline link of the dimension
it is travelling in and class 1 afterwards.  That needs at least two
virtual channels per physical channel (one per class).
"""

from __future__ import annotations

from repro.network.topology import Topology
from repro.routing.base import (
    RouteDecision,
    RoutingAlgorithm,
    VirtualChannelClasses,
    dateline_escape_classes,
)

__all__ = ["DimensionOrderRouting"]


class DimensionOrderRouting(RoutingAlgorithm):
    """Deterministic XY (dimension-order) routing over a mesh or torus.

    On a mesh every virtual channel carries the same deterministic
    relation.  On a torus the channels are declared *escape* channels
    under the dateline discipline (two classes, minimum two VCs); the
    allocator then draws from the class matching the message's dateline
    state, which is exactly the classic two-VC torus scheme.
    """

    name = "dimension-order"

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """Topology the decisions are computed on."""
        return self._topology

    @property
    def min_virtual_channels(self) -> int:
        # A torus needs one VC per dateline class.
        return 2 if self._topology.wraps else 1

    def vc_classes(self, vcs_per_port: int) -> VirtualChannelClasses:
        self.validate(vcs_per_port)
        if self._topology.wraps:
            # Every channel is an escape channel of the dateline
            # subfunction; allocation flows entirely through the escape
            # branch, selecting from the class the message's dateline
            # mask dictates.
            escape = tuple(range(vcs_per_port))
            return VirtualChannelClasses(
                adaptive_vcs=(),
                escape_vcs=escape,
                escape_classes=dateline_escape_classes(escape),
            )
        # Every virtual channel follows the same deterministic relation, so
        # they are all "adaptive class" channels with no reserved escapes.
        return VirtualChannelClasses(
            adaptive_vcs=tuple(range(vcs_per_port)), escape_vcs=()
        )

    def decide(self, current: int, destination: int) -> RouteDecision:
        port = self._topology.dimension_order_port(current, destination)
        if self._topology.wraps:
            # All VCs are escape channels: the adaptive branch must not
            # offer candidates, or headers would bypass the dateline
            # class selection.
            return RouteDecision(adaptive_ports=(), escape_port=port)
        return RouteDecision(adaptive_ports=(port,), escape_port=port)
