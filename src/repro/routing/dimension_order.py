"""Deterministic dimension-order (XY) routing.

The oblivious baseline of the paper's Figure 5: a message fully corrects
its offset in dimension 0 (X) before moving in dimension 1 (Y), and so on.
Dimension-order routing is deadlock free on a mesh with a single virtual
channel, so every virtual channel may carry it.
"""

from __future__ import annotations

from repro.network.topology import Topology
from repro.routing.base import RouteDecision, RoutingAlgorithm, VirtualChannelClasses

__all__ = ["DimensionOrderRouting"]


class DimensionOrderRouting(RoutingAlgorithm):
    """Deterministic XY (dimension-order) routing over a mesh or torus.

    Note: on a torus, dimension-order routing needs either two virtual
    channels per dimension (dateline scheme) or bubble flow control for
    deadlock freedom across the wraparound links; this class implements the
    dateline-free mesh discipline and therefore refuses torus topologies.
    """

    name = "dimension-order"

    def __init__(self, topology: Topology) -> None:
        if topology.wraps:
            raise ValueError(
                "DimensionOrderRouting supports meshes only; wraparound links "
                "need a dateline virtual-channel discipline"
            )
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """Topology the decisions are computed on."""
        return self._topology

    @property
    def min_virtual_channels(self) -> int:
        return 1

    def vc_classes(self, vcs_per_port: int) -> VirtualChannelClasses:
        self.validate(vcs_per_port)
        # Every virtual channel follows the same deterministic relation, so
        # they are all "adaptive class" channels with no reserved escapes.
        return VirtualChannelClasses(
            adaptive_vcs=tuple(range(vcs_per_port)), escape_vcs=()
        )

    def decide(self, current: int, destination: int) -> RouteDecision:
        port = self._topology.dimension_order_port(current, destination)
        return RouteDecision(adaptive_ports=(port,), escape_port=port)
