"""Routing algorithms and routing-relation providers.

Two closely related concepts live here:

* **Port providers** (:mod:`repro.routing.providers`): plain functions
  mapping ``(current_node, destination)`` to the set of output ports a
  routing relation permits.  They are what routing tables are programmed
  with (full-table, meta-table and economical-storage tables all store the
  image of a provider in different encodings).
* **Routing algorithms** (:class:`~repro.routing.base.RoutingAlgorithm`):
  the run-time decision logic used by a router.  An algorithm combines a
  routing table (giving the adaptive candidate ports) with a
  virtual-channel discipline that guarantees deadlock freedom; Duato's
  fully adaptive algorithm, used throughout the paper, reserves one escape
  virtual channel per physical channel that always follows dimension-order
  routing.
"""

from repro.routing.base import (
    RouteDecision,
    RoutingAlgorithm,
    VirtualChannelClasses,
    dateline_escape_classes,
)
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.routing.providers import (
    dimension_order_provider,
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)
from repro.routing.turn_model import TurnModelRouting

__all__ = [
    "DimensionOrderRouting",
    "DuatoFullyAdaptiveRouting",
    "RouteDecision",
    "RoutingAlgorithm",
    "TurnModelRouting",
    "VirtualChannelClasses",
    "dateline_escape_classes",
    "dimension_order_provider",
    "minimal_adaptive_provider",
    "negative_first_provider",
    "north_last_provider",
    "west_first_provider",
]


# -- registry factories --------------------------------------------------------------
#
# Each factory may carry a ``validate_wraparound(config)`` attribute:
# eager config validation (:func:`repro.registry.validate_config_names`)
# calls it when the selected topology wraps, so a routing x topology x
# escape-VC mismatch fails at SimulationConfig construction with a
# pointed cross-field error instead of a ValueError from deep inside
# network wiring.  Factories without the attribute (plugins) are skipped
# and keep their wiring-time behaviour.

from repro.registry import register as _register  # noqa: E402


@_register("routing", "duato")
def _make_duato(topology, table, config) -> DuatoFullyAdaptiveRouting:
    """Duato's fully adaptive routing with escape virtual channels."""
    return DuatoFullyAdaptiveRouting(
        topology, table, num_escape_vcs=config.num_escape_vcs
    )


def _duato_validate_wraparound(config) -> None:
    if config.num_escape_vcs < 2:
        raise ValueError(
            "SimulationConfig: routing='duato' on a wrapping topology "
            "needs >=2 escape VCs on a torus (dateline discipline: one "
            "escape class before the dateline crossing, one after); got "
            f"num_escape_vcs={config.num_escape_vcs}"
        )


_make_duato.validate_wraparound = _duato_validate_wraparound


@_register("routing", "dimension-order")
def _make_dimension_order(topology, table, config) -> DimensionOrderRouting:
    """Deterministic dimension-order (XY) routing."""
    return DimensionOrderRouting(topology)


def _dimension_order_validate_wraparound(config) -> None:
    if config.vcs_per_port < 2:
        raise ValueError(
            "SimulationConfig: routing='dimension-order' on a wrapping "
            "topology needs >=2 escape VCs on a torus (all VCs become "
            "dateline escape channels, one class before the dateline "
            f"crossing, one after); got vcs_per_port={config.vcs_per_port}"
        )


_make_dimension_order.validate_wraparound = _dimension_order_validate_wraparound


def _turn_model_validate_wraparound(config) -> None:
    raise ValueError(
        f"SimulationConfig: routing={config.routing!r} is a turn-model "
        "algorithm, which is only deadlock free on meshes; wraparound "
        "links need routing='duato' or 'dimension-order' with >=2 escape "
        "VCs (dateline discipline)"
    )


@_register("routing", "north-last")
def _make_north_last(topology, table, config) -> TurnModelRouting:
    """North-Last partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="north-last")


_make_north_last.validate_wraparound = _turn_model_validate_wraparound


@_register("routing", "west-first")
def _make_west_first(topology, table, config) -> TurnModelRouting:
    """West-First partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="west-first")


_make_west_first.validate_wraparound = _turn_model_validate_wraparound


@_register("routing", "negative-first")
def _make_negative_first(topology, table, config) -> TurnModelRouting:
    """Negative-First partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="negative-first")


_make_negative_first.validate_wraparound = _turn_model_validate_wraparound
