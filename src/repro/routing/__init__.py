"""Routing algorithms and routing-relation providers.

Two closely related concepts live here:

* **Port providers** (:mod:`repro.routing.providers`): plain functions
  mapping ``(current_node, destination)`` to the set of output ports a
  routing relation permits.  They are what routing tables are programmed
  with (full-table, meta-table and economical-storage tables all store the
  image of a provider in different encodings).
* **Routing algorithms** (:class:`~repro.routing.base.RoutingAlgorithm`):
  the run-time decision logic used by a router.  An algorithm combines a
  routing table (giving the adaptive candidate ports) with a
  virtual-channel discipline that guarantees deadlock freedom; Duato's
  fully adaptive algorithm, used throughout the paper, reserves one escape
  virtual channel per physical channel that always follows dimension-order
  routing.
"""

from repro.routing.base import RouteDecision, RoutingAlgorithm, VirtualChannelClasses
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.routing.providers import (
    dimension_order_provider,
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)
from repro.routing.turn_model import TurnModelRouting

__all__ = [
    "DimensionOrderRouting",
    "DuatoFullyAdaptiveRouting",
    "RouteDecision",
    "RoutingAlgorithm",
    "TurnModelRouting",
    "VirtualChannelClasses",
    "dimension_order_provider",
    "minimal_adaptive_provider",
    "negative_first_provider",
    "north_last_provider",
    "west_first_provider",
]


# -- registry factories --------------------------------------------------------------

from repro.registry import register as _register  # noqa: E402


@_register("routing", "duato")
def _make_duato(topology, table, config) -> DuatoFullyAdaptiveRouting:
    """Duato's fully adaptive routing with escape virtual channels."""
    return DuatoFullyAdaptiveRouting(
        topology, table, num_escape_vcs=config.num_escape_vcs
    )


@_register("routing", "dimension-order")
def _make_dimension_order(topology, table, config) -> DimensionOrderRouting:
    """Deterministic dimension-order (XY) routing."""
    return DimensionOrderRouting(topology)


@_register("routing", "north-last")
def _make_north_last(topology, table, config) -> TurnModelRouting:
    """North-Last partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="north-last")


@_register("routing", "west-first")
def _make_west_first(topology, table, config) -> TurnModelRouting:
    """West-First partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="west-first")


@_register("routing", "negative-first")
def _make_negative_first(topology, table, config) -> TurnModelRouting:
    """Negative-First partially adaptive turn-model routing."""
    return TurnModelRouting(topology, model="negative-first")
