"""Routing algorithms and routing-relation providers.

Two closely related concepts live here:

* **Port providers** (:mod:`repro.routing.providers`): plain functions
  mapping ``(current_node, destination)`` to the set of output ports a
  routing relation permits.  They are what routing tables are programmed
  with (full-table, meta-table and economical-storage tables all store the
  image of a provider in different encodings).
* **Routing algorithms** (:class:`~repro.routing.base.RoutingAlgorithm`):
  the run-time decision logic used by a router.  An algorithm combines a
  routing table (giving the adaptive candidate ports) with a
  virtual-channel discipline that guarantees deadlock freedom; Duato's
  fully adaptive algorithm, used throughout the paper, reserves one escape
  virtual channel per physical channel that always follows dimension-order
  routing.
"""

from repro.routing.base import RouteDecision, RoutingAlgorithm, VirtualChannelClasses
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoFullyAdaptiveRouting
from repro.routing.providers import (
    dimension_order_provider,
    minimal_adaptive_provider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)
from repro.routing.turn_model import TurnModelRouting

__all__ = [
    "DimensionOrderRouting",
    "DuatoFullyAdaptiveRouting",
    "RouteDecision",
    "RoutingAlgorithm",
    "TurnModelRouting",
    "VirtualChannelClasses",
    "dimension_order_provider",
    "minimal_adaptive_provider",
    "negative_first_provider",
    "north_last_provider",
    "west_first_provider",
]
