"""Turn-model partially adaptive routing algorithms.

The turn model [Glass & Ni, ISCA 1992] obtains deadlock freedom on a mesh
without extra virtual channels by prohibiting a quarter of the possible
turns.  The paper uses North-Last routing in its Figure 7 example of how
an economical-storage routing table is programmed; West-First and
Negative-First are provided for completeness and for the turn-model
ablation benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.network.topology import Topology
from repro.routing.base import RouteDecision, RoutingAlgorithm, VirtualChannelClasses
from repro.routing.providers import (
    PortProvider,
    negative_first_provider,
    north_last_provider,
    west_first_provider,
)

if TYPE_CHECKING:  # pragma: no cover - import used for type checking only
    from repro.tables.base import RoutingTable

__all__ = ["TurnModelRouting"]

_PROVIDERS = {
    "north-last": north_last_provider,
    "west-first": west_first_provider,
    "negative-first": negative_first_provider,
}


class TurnModelRouting(RoutingAlgorithm):
    """Partially adaptive routing derived from a turn-model restriction.

    Parameters
    ----------
    topology:
        Mesh topology the algorithm routes on.
    model:
        One of ``"north-last"``, ``"west-first"`` or ``"negative-first"``.
    table:
        Optional routing table to consult instead of computing the turn
        restriction on the fly.  When given, the table must have been
        programmed with the matching provider (this is how the Fig. 7
        economical-storage example is exercised end to end).
    """

    def __init__(
        self,
        topology: Topology,
        model: str = "north-last",
        table: Optional["RoutingTable"] = None,
    ) -> None:
        if model not in _PROVIDERS:
            raise ValueError(
                f"unknown turn model {model!r}; expected one of {sorted(_PROVIDERS)}"
            )
        if topology.wraps:
            raise ValueError("turn-model routing is only deadlock free on meshes")
        self._topology = topology
        self._model = model
        self._provider: PortProvider = _PROVIDERS[model](topology)
        self._table = table
        self.name = f"turn-model-{model}"

    @property
    def topology(self) -> Topology:
        """Topology the decisions are computed on."""
        return self._topology

    @property
    def model(self) -> str:
        """Which turn model this instance implements."""
        return self._model

    @property
    def min_virtual_channels(self) -> int:
        # Turn-model routing is deadlock free with a single channel.
        return 1

    def vc_classes(self, vcs_per_port: int) -> VirtualChannelClasses:
        self.validate(vcs_per_port)
        return VirtualChannelClasses(
            adaptive_vcs=tuple(range(vcs_per_port)), escape_vcs=()
        )

    def decide(self, current: int, destination: int) -> RouteDecision:
        if self._table is not None:
            ports = self._table.lookup(current, destination)
        else:
            ports = self._provider(current, destination)
        # Any permitted port may serve as the deterministic fallback; using
        # the first (lowest-dimension) port keeps the decision stable.
        return RouteDecision(adaptive_ports=ports, escape_port=ports[0])
