"""Routing-relation providers.

A *provider* is a function ``provider(current, destination) -> tuple of
ports`` describing which output ports a routing relation permits at
``current`` for messages heading to ``destination``.  Routing tables are
programmed by evaluating a provider for every table index, exactly the way
a system administrator would program the lookup tables of a commercial
table-based router.

All providers here return **minimal** (productive) ports only, which is
what every routing algorithm evaluated in the paper uses.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.network.topology import LOCAL_PORT, Topology, port_direction, port_for

__all__ = [
    "PortProvider",
    "dimension_order_provider",
    "minimal_adaptive_provider",
    "negative_first_provider",
    "north_last_provider",
    "west_first_provider",
]

#: Signature of a routing-relation provider.
PortProvider = Callable[[int, int], Tuple[int, ...]]


def minimal_adaptive_provider(topology: Topology) -> PortProvider:
    """Fully adaptive minimal routing: every productive port is permitted.

    This is the routing relation used on the adaptive virtual channels of
    Duato's algorithm in the paper's evaluation.
    """

    def provider(current: int, destination: int) -> Tuple[int, ...]:
        return topology.minimal_ports(current, destination)

    return provider


def dimension_order_provider(topology: Topology) -> PortProvider:
    """Deterministic dimension-order (XY) routing: a single port per entry."""

    def provider(current: int, destination: int) -> Tuple[int, ...]:
        return (topology.dimension_order_port(current, destination),)

    return provider


def _turn_model_provider(
    topology: Topology, forbidden: Callable[[int, Tuple[int, ...]], bool]
) -> PortProvider:
    """Shared machinery for 2-D turn-model providers.

    ``forbidden(port, signs)`` returns True when the turn model disallows
    using ``port`` given the remaining per-dimension signs; the provider
    keeps every minimal port that is not forbidden, falling back to the
    full minimal set if the restriction would leave no port (which cannot
    happen for the three classic turn models but guards custom ones).
    """

    def provider(current: int, destination: int) -> Tuple[int, ...]:
        if current == destination:
            return (LOCAL_PORT,)
        signs = topology.relative_signs(current, destination)
        candidates = topology.minimal_ports(current, destination)
        allowed = tuple(port for port in candidates if not forbidden(port, signs))
        return allowed if allowed else candidates

    return provider


def north_last_provider(topology: Topology) -> PortProvider:
    """North-Last partially adaptive routing for 2-D meshes (Turn Model).

    A message may only travel North (+Y) when no other productive
    direction remains, i.e. turns out of the North direction are forbidden
    so North must be the last direction used.  This is the algorithm used
    in the paper's Fig. 7 economical-storage programming example.
    """
    if topology.n_dims != 2:
        raise ValueError("the North-Last turn model is defined for 2-D meshes")
    north = port_for(1, positive=True)

    def forbidden(port: int, signs: Tuple[int, ...]) -> bool:
        # +Y is forbidden while an X correction is still pending.
        return port == north and signs[0] != 0

    return _turn_model_provider(topology, forbidden)


def west_first_provider(topology: Topology) -> PortProvider:
    """West-First partially adaptive routing for 2-D meshes (Turn Model).

    Any travel toward the West (-X) must happen before every other
    direction, therefore -X is the only permitted port while a westward
    correction remains.
    """
    if topology.n_dims != 2:
        raise ValueError("the West-First turn model is defined for 2-D meshes")
    west = port_for(0, positive=False)

    def forbidden(port: int, signs: Tuple[int, ...]) -> bool:
        # While a westward hop is pending, only the West port is allowed.
        return signs[0] < 0 and port != west

    return _turn_model_provider(topology, forbidden)


def negative_first_provider(topology: Topology) -> PortProvider:
    """Negative-First partially adaptive routing for n-D meshes (Turn Model).

    All hops in negative directions must be completed before any hop in a
    positive direction is taken.
    """

    def forbidden(port: int, signs: Tuple[int, ...]) -> bool:
        dimension, sign = port_direction(port)
        any_negative_pending = any(s < 0 for s in signs)
        return any_negative_pending and sign > 0

    return _turn_model_provider(topology, forbidden)
