"""Duato's fully adaptive routing (the algorithm used throughout the paper).

Duato's methodology [Duato, IEEE TPDS 1993] splits the virtual channels of
every physical channel into two classes:

* **escape channels** implementing a deadlock-free routing subfunction --
  here deterministic dimension-order (XY) routing on the mesh; and
* **adaptive channels** on which a message may follow *any* minimal
  productive port.

A message always has the escape channel of its dimension-order port as a
fallback, so no cyclic dependency can stall the network even though the
adaptive channels are unrestricted.  Only one extra virtual channel is
needed, which is why the paper picks this algorithm for a cost-effective
adaptive router.

On tori the dimension-order subfunction alone is cyclic (the wraparound
links close a ring per dimension), so the escape channels additionally
follow the classic **dateline** discipline: the escape pool is split
into two classes, a message requests class 0 until its route has crossed
the dateline link of the dimension it is escaping on (the wraparound
link, see :meth:`~repro.network.topology.Topology.dateline_bits`) and
class 1 afterwards.  Ordering escape channels by ``(dimension, class,
ring position)`` then strictly increases along every dependency chain --
dimension-order routing leaves a dimension only upward, the class bump
breaks each ring -- so the extended subfunction stays acyclic; the
channel-dependency-graph check in :mod:`repro.tables.validation`
verifies this mechanically.  Two escape virtual channels (one per
class) are therefore the minimum on a torus.

Duato's wormhole proof additionally assumes one message per channel
queue, so on wrapping topologies both cores allocate output virtual
channels *atomically*: a header may claim a channel only when its
downstream buffer is fully credited.  Without this, FIFO chaining can
bury a header inside an escape buffer behind a foreign blocked message
that re-entered the adaptive network, re-coupling the escape
subnetwork to adaptive-channel cycles closed by the wraparound links.
Meshes keep the chained allocation (and their exact flit schedules).

The adaptive candidate ports are obtained from a routing *table*
(full-table, meta-table or economical-storage); restricting the table
restricts adaptivity, which is exactly the effect studied in Section 5 of
the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.topology import Topology
from repro.routing.base import (
    RouteDecision,
    RoutingAlgorithm,
    VirtualChannelClasses,
    dateline_escape_classes,
)

if TYPE_CHECKING:  # pragma: no cover - import used for type checking only
    from repro.tables.base import RoutingTable

__all__ = ["DuatoFullyAdaptiveRouting"]


class DuatoFullyAdaptiveRouting(RoutingAlgorithm):
    """Fully adaptive minimal routing with dimension-order escape channels.

    Parameters
    ----------
    topology:
        The network the algorithm routes on.  On meshes the escape
        subfunction is plain dimension-order routing; on tori it is
        dimension-order with the dateline VC discipline, which needs two
        escape channels (one per dateline class).
    table:
        Routing table consulted for the adaptive candidate ports.
    num_escape_vcs:
        Number of virtual channels per physical channel reserved as escape
        channels (default 1, the mesh minimum; the paper's routers have 4
        VCs so 3 remain fully adaptive).
    """

    name = "duato-fully-adaptive"

    def __init__(
        self,
        topology: Topology,
        table: "RoutingTable",
        num_escape_vcs: int = 1,
    ) -> None:
        if num_escape_vcs < 1:
            raise ValueError("at least one escape virtual channel is required")
        if topology.wraps and num_escape_vcs < 2:
            raise ValueError(
                "the dateline escape discipline needs >=2 escape VCs on a "
                f"torus (one per dateline class), got num_escape_vcs="
                f"{num_escape_vcs}"
            )
        self._topology = topology
        self._table = table
        self._num_escape_vcs = num_escape_vcs

    @property
    def topology(self) -> Topology:
        """Topology the decisions are computed on."""
        return self._topology

    @property
    def table(self) -> "RoutingTable":
        """Routing table supplying the adaptive candidate ports."""
        return self._table

    @property
    def num_escape_vcs(self) -> int:
        """Escape virtual channels reserved per physical channel."""
        return self._num_escape_vcs

    @property
    def min_virtual_channels(self) -> int:
        # One escape channel plus at least one adaptive channel.
        return self._num_escape_vcs + 1

    def vc_classes(self, vcs_per_port: int) -> VirtualChannelClasses:
        self.validate(vcs_per_port)
        escape = tuple(range(self._num_escape_vcs))
        adaptive = tuple(range(self._num_escape_vcs, vcs_per_port))
        classes = dateline_escape_classes(escape) if self._topology.wraps else None
        return VirtualChannelClasses(
            adaptive_vcs=adaptive, escape_vcs=escape, escape_classes=classes
        )

    def decide(self, current: int, destination: int) -> RouteDecision:
        adaptive_ports = self._table.lookup(current, destination)
        escape_port = self._topology.dimension_order_port(current, destination)
        return RouteDecision(adaptive_ports=adaptive_ports, escape_port=escape_port)
