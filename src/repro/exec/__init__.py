"""Batch execution layer: backends and the content-addressed result cache.

The sweep, campaign and experiment runners submit batches of independent
simulation points through an :class:`ExecutionBackend`:

* :class:`SerialBackend` -- in-process, one point at a time (the default,
  exactly the historical behaviour);
* :class:`ProcessPoolBackend` -- a ``multiprocessing`` worker pool with a
  configurable worker count.

Both can be paired with a :class:`ResultCache`, which persists every
result as JSON keyed by a stable hash of its configuration so repeated
points are served from disk instead of being re-simulated::

    from repro.exec import ProcessPoolBackend, ResultCache

    cache = ResultCache(".lapses-cache")
    with ProcessPoolBackend(workers=4, cache=cache) as backend:
        report = run_campaign(SimulationConfig.small(), backend=backend)

Use the backend as a context manager (or call ``close()``) so the worker
processes are released when the batch work is done.
"""

from repro.exec.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    simulate_config,
)
from repro.exec.cache import ResultCache, config_cache_key

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "config_cache_key",
    "make_backend",
    "simulate_config",
]
