"""Execution backends: run batches of simulations serially or in parallel.

Every sweep/campaign/experiment runner submits *batches* of independent
:class:`~repro.core.config.SimulationConfig` points through an
:class:`ExecutionBackend` instead of calling the simulator inline.  The
backend consults an optional :class:`~repro.exec.cache.ResultCache` before
simulating, executes only the misses (serially or on a process pool) and
returns results in submission order, so a batch is a drop-in replacement
for the equivalent loop of ``NetworkSimulator(config).run()`` calls.

Each simulation is seeded solely by its configuration, so results are
bit-identical whichever backend runs them and however the batch is split
across workers.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.exec.cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.config import SimulationConfig
    from repro.core.results import SimulationResult

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "make_backend",
    "simulate_config",
]


def simulate_config(config: "SimulationConfig") -> "SimulationResult":
    """Simulate one configuration (module-level so process pools can pickle it)."""
    from repro.core.simulator import NetworkSimulator

    return NetworkSimulator(config).run()


def _import_plugins(plugins: Sequence[str]) -> None:
    """Worker-process initializer: import plugin modules before simulating.

    Worker processes import repro fresh, so components registered by user
    code in the parent are unknown there; re-importing the plugin modules
    (dotted paths or ``.py`` files) restores the registrations.
    """
    from repro.registry import load_plugin

    for plugin in plugins:
        load_plugin(plugin)


class ExecutionBackend(ABC):
    """Runs batches of independent simulation points, with optional caching."""

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache
        #: Simulations actually executed (cache hits are not counted).
        self.simulations_run = 0

    @property
    @abstractmethod
    def wave_size(self) -> int:
        """Points a saturation-stopped sweep should evaluate per wave.

        Serial execution uses 1 (stop exactly at the first saturated point,
        never simulating past it); parallel execution uses the worker count
        so a wave keeps every worker busy.
        """

    @abstractmethod
    def _execute(
        self,
        configs: Sequence["SimulationConfig"],
        on_result: Callable[[int, "SimulationResult"], None],
    ) -> List["SimulationResult"]:
        """Simulate every configuration; returns results in submission order.

        ``on_result(index, result)`` is invoked once per point *as it
        completes* (possibly out of submission order), so the caller can
        persist finished work even if a later point fails or the run is
        interrupted.
        """

    def run_configs(self, configs: Sequence["SimulationConfig"]) -> List["SimulationResult"]:
        """Run a batch of configurations, returning results in submission order.

        Cached points are served from disk; only misses are simulated (and
        then stored back).  Duplicate configurations within one batch are
        simulated once.  A configuration with ``replications > 1`` fans
        out into its seed-offset replicate configurations (each an
        ordinary single-seed cache slot) and comes back as one merged
        result carrying confidence intervals (see
        :func:`repro.stats.confidence.merge_replicates`); the replicates
        run through the same cache/dedup/parallel path as everything
        else, so serial and pool backends stay bit-identical.
        """
        configs = list(configs)
        groups = [config.replicate_configs() for config in configs]
        if any(len(group) > 1 for group in groups):
            from repro.stats.confidence import merge_replicates

            flat = [replicate for group in groups for replicate in group]
            flat_results = self._run_cached(flat)
            results: List["SimulationResult"] = []
            offset = 0
            for config, group in zip(configs, groups):
                chunk = flat_results[offset : offset + len(group)]
                offset += len(group)
                if len(group) == 1:
                    results.append(chunk[0])
                else:
                    results.append(merge_replicates(config, chunk))
            return results
        return self._run_cached(configs)

    def _run_cached(
        self, configs: List["SimulationConfig"]
    ) -> List["SimulationResult"]:
        """The cache-lookup/dedup/execute path for single-seed configurations."""
        results: List[Optional["SimulationResult"]] = [None] * len(configs)
        pending_indices: List[int] = []
        if self.cache is not None:
            for index, config in enumerate(configs):
                cached = self.cache.get(config)
                if cached is not None:
                    results[index] = cached
                else:
                    pending_indices.append(index)
        else:
            pending_indices = list(range(len(configs)))

        if pending_indices:
            # Deduplicate identical configs within the batch.
            unique: List["SimulationConfig"] = []
            slot_of: dict = {}
            for index in pending_indices:
                config = configs[index]
                if config not in slot_of:
                    slot_of[config] = len(unique)
                    unique.append(config)
            # Persist each point as soon as it completes, so an interrupted
            # batch loses only its in-flight points, never finished ones.
            def on_result(slot: int, result: "SimulationResult") -> None:
                self.simulations_run += 1
                if self.cache is not None:
                    self.cache.put(unique[slot], result)

            executed = self._execute(unique, on_result)
            for index in pending_indices:
                results[index] = executed[slot_of[configs[index]]]
        return results  # type: ignore[return-value]

    def run_one(self, config: "SimulationConfig") -> "SimulationResult":
        """Run a single configuration through the batch path."""
        return self.run_configs([config])[0]

    def close(self) -> None:
        """Release any worker resources (no-op for serial execution)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution, one simulation at a time (the historical path)."""

    @property
    def wave_size(self) -> int:
        return 1

    def _execute(
        self,
        configs: Sequence["SimulationConfig"],
        on_result: Callable[[int, "SimulationResult"], None],
    ) -> List["SimulationResult"]:
        results: List["SimulationResult"] = []
        for index, config in enumerate(configs):
            result = simulate_config(config)
            on_result(index, result)
            results.append(result)
        return results

    def __repr__(self) -> str:
        return f"SerialBackend(cache={self.cache!r})"


class ProcessPoolBackend(ExecutionBackend):
    """Execution on a pool of worker processes (``concurrent.futures``).

    The pool is created lazily on the first batch and reused until
    :meth:`close` (or context-manager exit).  Workers receive pickled
    configurations and return pickled results; because every run is seeded
    by its configuration alone, the output is bit-identical to
    :class:`SerialBackend`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        plugins: Sequence[str] = (),
    ) -> None:
        super().__init__(cache=cache)
        if workers is not None and workers < 1:
            raise ValueError("a process pool needs at least one worker")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        #: Plugin modules imported by every worker before simulating, so
        #: registry-provided components from user code work under the pool.
        self.plugins = tuple(plugins)
        self._pool = None

    @property
    def wave_size(self) -> int:
        return self.workers

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            if self.plugins:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_import_plugins,
                    initargs=(self.plugins,),
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _execute(
        self,
        configs: Sequence["SimulationConfig"],
        on_result: Callable[[int, "SimulationResult"], None],
    ) -> List["SimulationResult"]:
        if len(configs) == 1:
            # Not worth a round-trip through the pool.
            result = simulate_config(configs[0])
            on_result(0, result)
            return [result]
        from concurrent.futures import as_completed

        pool = self._ensure_pool()
        slot_of_future = {
            pool.submit(simulate_config, config): index
            for index, config in enumerate(configs)
        }
        results: List[Optional["SimulationResult"]] = [None] * len(configs)
        first_error: Optional[BaseException] = None
        # Drain in completion order so every finished point is reported (and
        # cached) even when another worker's point fails.
        for future in as_completed(slot_of_future):
            slot = slot_of_future[future]
            try:
                result = future.result()
            except Exception as error:
                if first_error is None:
                    first_error = error
                continue
            on_result(slot, result)
            results[slot] = result
        if first_error is not None:
            raise first_error
        return results  # type: ignore[return-value]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(workers={self.workers}, cache={self.cache!r})"


def make_backend(
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    plugins: Sequence[str] = (),
) -> ExecutionBackend:
    """Build a backend from the CLI-level knobs.

    ``workers`` of None/0/1 selects :class:`SerialBackend`; anything larger
    selects :class:`ProcessPoolBackend`.  ``cache_dir`` (when given) attaches
    a :class:`ResultCache` rooted there.  ``plugins`` lists plugin modules
    every pool worker imports before simulating (serial execution relies on
    the caller having imported them in-process already).
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    if workers is not None and workers > 1:
        return ProcessPoolBackend(workers=workers, cache=cache, plugins=plugins)
    return SerialBackend(cache=cache)
