"""Content-addressed, on-disk cache of simulation results.

A :class:`ResultCache` persists every :class:`~repro.core.results.SimulationResult`
as one JSON file named by a stable hash of its configuration, so repeated
campaign/sweep points are skipped entirely.  The key is a SHA-256 digest of
the canonical (sorted-key) JSON rendering of ``SimulationConfig.to_dict()``
-- deliberately independent of Python's randomized ``hash()`` so the same
configuration maps to the same file in every process and on every machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.config import SimulationConfig
    from repro.core.results import SimulationResult

__all__ = [
    "CACHE_FORMAT_VERSION",
    "STALE_TMP_SECONDS",
    "ResultCache",
    "config_cache_key",
]

#: Bumped whenever the stored-JSON schema, the simulator's numeric
#: behaviour or the key derivation changes within a release; folded into
#: the key so stale entries become misses instead of silently serving old
#: results.
#: Version 2: results record the effective per-node message rate.
#: Version 3: the provenance (``module:qualname``) of every
#: registry-provided component named by the configuration feeds the key,
#: so a result computed with a plugin component is never served for a
#: same-named but different implementation (and vice versa).  v2 entries
#: hash to different file names and are simply never looked at.
#: Version 4: configurations grew the ``switch_mode`` field (router
#: busy-path schedule) and its schedule provenance joins the component
#: map, so entries computed before the batched allocator existed are
#: never served as current.
#: Version 5: configurations grew the ``link_mode`` field (link-transport
#: schedule) and its schedule provenance joins the component map, so the
#: two transport schedules occupy distinct slots and entries written
#: before batched link transport existed are never served as current.
#: Version 6: configurations grew the ``core_mode`` field (core schedule:
#: per-component object network vs the flat struct-of-arrays core) and
#: its schedule provenance joins the component map, so entries written
#: before the flat core existed are never served as current.
#: Version 7: configurations grew the closed-loop workload fields
#: (``workload`` plus its parameters), results grew the ``drain``
#: metrics block, ``core_mode`` now defaults to ``"flat"`` and
#: None-valued optional component fields are omitted from the
#: provenance map, so every pre-workload entry hashes to a different
#: slot and is never served as current.
#: Version 8: configurations grew the ``topology`` and ``link_delays``
#: fields (explicit topology selection incl. the 3-D torus, per-dimension
#: link delays) and the topology provenance can now name ``torus3d``, so
#: entries written before tori were simulatable are never served as
#: current.
#: Version 9: configurations grew the ``replications``/``seed_stride``
#: fields (seed-replicated points with confidence intervals), latency
#: summaries grew the streaming ``p50_total_latency``/``p99_total_latency``
#: estimates and results grew the optional ``replicates`` statistics
#: block, so entries written before the replication layer existed are
#: never served as current.
CACHE_FORMAT_VERSION = 9

#: ``*.tmp`` files younger than this many seconds are presumed to belong
#: to a live concurrent writer and are left alone by :meth:`ResultCache.clear`.
STALE_TMP_SECONDS = 3600.0


def config_cache_key(config: "SimulationConfig") -> str:
    """Stable content hash of one configuration.

    Two equal configurations always produce the same key, across processes
    and interpreter invocations (``PYTHONHASHSEED`` has no influence).  The
    package version, cache format version and the provenance of every
    registry-backed component the configuration names are folded into the
    hash, so entries computed by a different release of the simulator --
    or by a differently-implemented plugin component -- are never served
    as current.
    """
    import repro
    from repro.registry import config_component_provenance

    payload = json.dumps(
        {
            "format": CACHE_FORMAT_VERSION,
            "version": repro.__version__,
            "config": config.to_dict(),
            "components": config_component_provenance(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persist simulation results as JSON keyed by the configuration hash.

    Lookups that fail for *any* reason -- missing file, truncated or
    corrupted JSON, a schema mismatch, or a stored configuration that does
    not equal the requested one -- count as misses, and the offending file
    is removed so the slot can be rewritten.  Writes are atomic (temp file
    plus ``os.replace``) so a crashed run never leaves a half-written entry.
    """

    def __init__(self, cache_dir: os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Successful lookups served from disk.
        self.hits = 0
        #: Lookups that found nothing usable.
        self.misses = 0
        #: Results written (one per :meth:`put`).
        self.stores = 0

    def path_for(self, config: "SimulationConfig") -> Path:
        """The file backing ``config``'s cache slot."""
        return self.cache_dir / f"{config_cache_key(config)}.json"

    def get(self, config: "SimulationConfig") -> Optional["SimulationResult"]:
        """The cached result for ``config``, or None on a miss."""
        from repro.core.results import SimulationResult

        path = self.path_for(config)
        try:
            text = path.read_text(encoding="utf-8")
            result = SimulationResult.from_json(text)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted or stale entry: discard it and treat as a miss.
            self._discard(path)
            self.misses += 1
            return None
        if result.config != config:
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, config: "SimulationConfig", result: "SimulationResult") -> Path:
        """Persist ``result`` under ``config``'s key; returns the file path.

        The temp file gets a unique name so concurrent runs sharing one
        cache directory never clobber each other's half-written entries.
        If a concurrent :meth:`clear` sweeps our temp file between
        ``mkstemp`` and ``os.replace`` (it only sweeps *stale* ones, but
        a pathological clock or threshold makes it possible), the write
        is retried once with a fresh temp file instead of failing the
        campaign point.
        """
        path = self.path_for(config)
        payload = result.to_json(indent=2)
        for attempt in (0, 1):
            fd, tmp_name = tempfile.mkstemp(
                dir=self.cache_dir, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except FileNotFoundError:
                # Our temp file was swept out from under us; rewrite once.
                self._discard(Path(tmp_name))
                if attempt:
                    raise
                continue
            except BaseException:
                self._discard(Path(tmp_name))
                raise
            break
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Also sweeps *stale* ``*.tmp`` files (older than
        :data:`STALE_TMP_SECONDS`) left behind when a writer was killed
        between ``mkstemp`` and ``os.replace``.  Fresh temp files are
        left alone: they belong to live concurrent writers whose
        ``os.replace`` would otherwise die with ``FileNotFoundError``.
        """
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            self._discard(path)
            removed += 1
        cutoff = time.time() - STALE_TMP_SECONDS
        for path in self.cache_dir.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    self._discard(path)
            except OSError:  # pragma: no cover - racing writer finished
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
