"""Full reproduction campaign: run every paper experiment and write a report.

:func:`run_campaign` executes the complete set of experiment runners (one
per table/figure of the paper) at a chosen scale and returns a
:class:`CampaignReport`; :meth:`CampaignReport.to_markdown` renders the
whole thing as a single Markdown document, which is how the measured
numbers quoted in ``EXPERIMENTS.md`` were produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.experiments import (
    run_cost_table,
    run_es_programming_example,
    run_lookahead_comparison,
    run_message_length_study,
    run_path_selection_study,
    run_table_storage_study,
)
from repro.core.results import format_rows
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["CampaignReport", "ExperimentReport", "run_campaign"]


@dataclass(frozen=True)
class ExperimentReport:
    """The reproduced rows of one paper table/figure."""

    #: Identifier matching the paper ("figure5", "table3", ...).
    name: str
    #: Human-readable title used as the section heading.
    title: str
    #: What the paper reports, summarised in one sentence.
    paper_claim: str
    #: The reproduced rows.
    rows: List[Dict[str, object]]
    #: Columns to print (None = all).
    columns: Optional[Sequence[str]] = None

    def to_markdown(self) -> str:
        """Render this experiment as a Markdown section."""
        table = format_rows(self.rows, columns=self.columns, precision=2)
        return (
            f"### {self.title}\n\n"
            f"*Paper claim:* {self.paper_claim}\n\n"
            f"```\n{table}\n```\n"
        )


@dataclass(frozen=True)
class CampaignReport:
    """All experiments of one reproduction campaign."""

    #: The base configuration every simulation-backed experiment used.
    config: SimulationConfig
    #: Individual experiment reports, in paper order.
    experiments: List[ExperimentReport] = field(default_factory=list)

    def experiment(self, name: str) -> ExperimentReport:
        """Look up one experiment report by its identifier."""
        for report in self.experiments:
            if report.name == name:
                return report
        raise KeyError(f"no experiment named {name!r} in this campaign")

    def to_markdown(self) -> str:
        """Render the whole campaign as a Markdown document."""
        header = (
            "## Reproduction campaign\n\n"
            f"Base configuration: {self.config.mesh_dims[0]}x{self.config.mesh_dims[1]} mesh, "
            f"{self.config.message_length}-flit messages, "
            f"{self.config.vcs_per_port} VCs/channel, "
            f"{self.config.measure_messages} measured messages per point, "
            f"seed {self.config.seed}.\n\n"
        )
        return header + "\n".join(report.to_markdown() for report in self.experiments)


def run_campaign(
    base_config: Optional[SimulationConfig] = None,
    loads_low_high: Sequence[float] = (0.15, 0.4),
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    backend: Optional[ExecutionBackend] = None,
) -> CampaignReport:
    """Run every paper experiment at the given scale.

    Parameters
    ----------
    base_config:
        The simulation scale; defaults to :meth:`SimulationConfig.small`.
    loads_low_high:
        The (low, high) normalized loads sampled by the latency experiments.
    traffic_patterns:
        Patterns used by the simulation-backed experiments (bit-permutation
        patterns require a power-of-two node count).
    backend:
        Execution backend every simulation point is submitted through
        (default: a fresh :class:`~repro.exec.backend.SerialBackend`).
        Pass a :class:`~repro.exec.backend.ProcessPoolBackend` to run the
        campaign on several cores and/or a backend with a
        :class:`~repro.exec.cache.ResultCache` to make campaigns resumable:
        every point is seeded by its configuration alone, so the report is
        identical whichever backend produced it.
    """
    config = base_config if base_config is not None else SimulationConfig.small()
    backend = backend if backend is not None else SerialBackend()
    experiments: List[ExperimentReport] = []

    experiments.append(
        ExperimentReport(
            name="figure5",
            title="Figure 5 - look-ahead and adaptivity comparison",
            paper_claim=(
                "the LA-ADAPT router is ~12-15% faster than the no-look-ahead routers "
                "at low load, and adaptivity dominates at high load on non-uniform traffic"
            ),
            rows=run_lookahead_comparison(
                config,
                traffic_patterns=traffic_patterns,
                loads=loads_low_high,
                backend=backend,
            ),
        )
    )
    experiments.append(
        ExperimentReport(
            name="table3",
            title="Table 3 - look-ahead benefit versus message length",
            paper_claim="the relative improvement shrinks from 18% (5 flits) to 6.5% (50 flits)",
            rows=run_message_length_study(
                config, load=loads_low_high[0], backend=backend
            ),
        )
    )
    experiments.append(
        ExperimentReport(
            name="figure6",
            title="Figure 6 - path-selection heuristics",
            paper_claim=(
                "LRU, LFU and MAX-CREDIT beat STATIC-XY and MIN-MUX on the "
                "non-uniform patterns at medium-to-high load"
            ),
            rows=run_path_selection_study(
                config,
                traffic_patterns=traffic_patterns,
                loads=loads_low_high[-1:],
                backend=backend,
            ),
        )
    )
    experiments.append(
        ExperimentReport(
            name="table4",
            title="Table 4 - table-storage schemes",
            paper_claim=(
                "economical storage equals the full table; the meta-table mappings "
                "lose adaptivity and saturate earlier"
            ),
            rows=run_table_storage_study(
                config,
                traffic_patterns=traffic_patterns,
                loads=loads_low_high,
                include_full_table=True,
                backend=backend,
            ),
        )
    )
    experiments.append(
        ExperimentReport(
            name="table5",
            title="Table 5 - storage cost summary",
            paper_claim="economical storage needs 9 entries on any 2-D mesh vs N for the full table",
            rows=run_cost_table(num_nodes=config.num_nodes, n_dims=len(config.mesh_dims)),
        )
    )
    experiments.append(
        ExperimentReport(
            name="figure7",
            title="Figure 7 - economical-storage table programming (North-Last)",
            paper_claim="specific algorithms deny otherwise-minimal ports to stay deadlock free",
            rows=run_es_programming_example(),
        )
    )
    return CampaignReport(config=config, experiments=experiments)
