"""Full reproduction campaign: run every paper experiment and write a report.

The campaign now lives in the declarative scenario layer as the built-in
``campaign`` suite study (:func:`repro.scenario.builtin.campaign_study`);
:func:`run_campaign` survives as a thin shim that builds the suite, runs
it through :func:`repro.scenario.run_study` and converts the outcome back
into a :class:`CampaignReport` (whose Markdown is bit-identical to the
historical implementation -- enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import render_campaign_header, render_report_section
from repro.exec.backend import ExecutionBackend

__all__ = ["CampaignReport", "ExperimentReport", "run_campaign"]


@dataclass(frozen=True)
class ExperimentReport:
    """The reproduced rows of one paper table/figure."""

    #: Identifier matching the paper ("figure5", "table3", ...).
    name: str
    #: Human-readable title used as the section heading.
    title: str
    #: What the paper reports, summarised in one sentence.
    paper_claim: str
    #: The reproduced rows.
    rows: List[Dict[str, object]]
    #: Columns to print (None = all).
    columns: Optional[Sequence[str]] = None

    def to_markdown(self) -> str:
        """Render this experiment as a Markdown section."""
        return render_report_section(
            self.title, self.paper_claim, self.rows, columns=self.columns
        )


@dataclass(frozen=True)
class CampaignReport:
    """All experiments of one reproduction campaign."""

    #: The base configuration every simulation-backed experiment used.
    config: SimulationConfig
    #: Individual experiment reports, in paper order.
    experiments: List[ExperimentReport] = field(default_factory=list)

    def experiment(self, name: str) -> ExperimentReport:
        """Look up one experiment report by its identifier."""
        for report in self.experiments:
            if report.name == name:
                return report
        raise KeyError(f"no experiment named {name!r} in this campaign")

    def to_markdown(self) -> str:
        """Render the whole campaign as a Markdown document."""
        return render_campaign_header(self.config) + "\n".join(
            report.to_markdown() for report in self.experiments
        )


def run_campaign(
    base_config: Optional[SimulationConfig] = None,
    loads_low_high: Sequence[float] = (0.15, 0.4),
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    backend: Optional[ExecutionBackend] = None,
) -> CampaignReport:
    """Run every paper experiment at the given scale.

    .. deprecated::
        Build the suite instead:
        ``run_study(repro.scenario.builtin.campaign_study(...))``.

    Parameters
    ----------
    base_config:
        The simulation scale; defaults to :meth:`SimulationConfig.small`.
    loads_low_high:
        The (low, high) normalized loads sampled by the latency experiments.
    traffic_patterns:
        Patterns used by the simulation-backed experiments (bit-permutation
        patterns require a power-of-two node count).
    backend:
        Execution backend every simulation point is submitted through
        (default: a fresh :class:`~repro.exec.backend.SerialBackend`).
        Every point is seeded by its configuration alone, so the report is
        identical whichever backend produced it.
    """
    warnings.warn(
        "run_campaign() is deprecated; run the 'campaign' Study instead "
        "(repro.scenario.builtin.campaign_study + repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenario.builtin import campaign_study
    from repro.scenario.runner import run_study

    config = base_config if base_config is not None else SimulationConfig.small()
    study = campaign_study(
        config,
        loads_low_high=loads_low_high,
        traffic_patterns=traffic_patterns,
    )
    outcome = run_study(study, backend=backend)
    experiments = [
        ExperimentReport(
            name=member.study.name,
            title=member.study.title,
            paper_claim=member.study.paper_claim,
            rows=member.rows,
            columns=member.study.report.columns,
        )
        for member in outcome.members
    ]
    return CampaignReport(config=config, experiments=experiments)
