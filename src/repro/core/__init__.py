"""Public API: configuration, the simulator facade and experiment runners.

Typical use::

    from repro.core import SimulationConfig, NetworkSimulator

    config = SimulationConfig.small(traffic="transpose", normalized_load=0.3)
    result = NetworkSimulator(config).run()
    print(result.summary.avg_total_latency)

The :mod:`repro.core.experiments` package contains one runner per table or
figure of the paper's evaluation section; the benchmark harness and the
examples are thin wrappers around those runners.
"""

from repro.core.config import PaperDefaults, SimulationConfig
from repro.core.results import SimulationResult, format_rows
from repro.core.simulator import NetworkSimulator
from repro.core.sweep import LoadSweepPoint, run_load_sweep

__all__ = [
    "LoadSweepPoint",
    "NetworkSimulator",
    "PaperDefaults",
    "SimulationConfig",
    "SimulationResult",
    "format_rows",
    "run_load_sweep",
]
