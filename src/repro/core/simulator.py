"""The simulation facade: build a network from a configuration and run it.

:class:`NetworkSimulator` is the main entry point of the library.  It
translates the plain-data :class:`~repro.core.config.SimulationConfig`
into topology, tables, routing, selection, traffic and statistics objects,
wires them into a :class:`~repro.network.network.Network`, drives the
cycle-level kernel and returns a
:class:`~repro.core.results.SimulationResult`.
"""

from __future__ import annotations

from typing import Optional

from repro import registry
from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.engine.kernel import KERNEL_MODES, SimulationKernel
from repro.engine.rng import SimulationRNG
from repro.network.flatcore import FlatNetworkCore, core_schedule_by_name
from repro.network.network import Network
from repro.network.topology import Topology
from repro.router.config import RouterConfig
from repro.router.pipeline import pipeline_by_name
from repro.routing.base import RoutingAlgorithm
from repro.selection.heuristics import make_selector
from repro.stats.collector import StatsCollector
from repro.stats.saturation import SaturationPolicy, is_saturated
from repro.tables.base import RoutingTable
from repro.traffic.generator import TrafficGenerator
from repro.traffic.injection import InjectionProcess, message_rate_for_load
from repro.traffic.patterns import make_pattern
from repro.workload.engine import WorkloadEngine

__all__ = ["NetworkSimulator", "build_table", "build_routing", "build_topology"]


def build_topology(config: SimulationConfig) -> Topology:
    """Construct the topology described by ``config`` via the registry."""
    factory = registry.TOPOLOGIES.get(registry.topology_name(config))
    return factory(config)


def build_table(config: SimulationConfig, topology: Topology) -> RoutingTable:
    """Construct the routing table organisation described by ``config``.

    Looks ``config.table`` up in :data:`repro.registry.ROUTING_TABLES`, so
    user-registered organisations build exactly like the built-ins.
    """
    factory = registry.ROUTING_TABLES.get(config.table)
    return factory(topology, config)


def build_routing(
    config: SimulationConfig, topology: Topology, table: RoutingTable
) -> RoutingAlgorithm:
    """Construct the routing algorithm described by ``config`` via the
    :data:`repro.registry.ROUTING_ALGORITHMS` registry."""
    factory = registry.ROUTING_ALGORITHMS.get(config.routing)
    return factory(topology, table, config)


def _build_injection(config: SimulationConfig, rate: float) -> InjectionProcess:
    factory = registry.INJECTIONS.get(config.injection)
    return factory(config, rate)


class NetworkSimulator:
    """Builds and runs one simulation described by a configuration.

    Parameters
    ----------
    config:
        The plain-data description of the run.
    kernel_mode:
        Scheduling mode of the cycle kernel: ``"activity"`` (default)
        skips quiescent components and fast-forwards over idle spans;
        ``"exhaustive"`` runs every component every cycle.  Both produce
        bit-identical results (enforced by
        ``tests/test_kernel_equivalence.py``); the exhaustive schedule is
        kept as the reference implementation.

    The router busy path has the same two-implementations-one-semantics
    split, selected by ``config.switch_mode`` (``"batched"`` default,
    ``"reference"`` specification; enforced bit-identical by
    ``tests/test_router_equivalence.py``), and so does link-level flit
    transport, selected by ``config.link_mode`` (``"batched"`` arrival
    lanes default, ``"reference"`` mailbox-tuple specification; enforced
    by ``tests/test_link_equivalence.py``).  The fourth axis is the core
    schedule, selected by ``config.core_mode``: ``"objects"`` (default)
    registers every router and interface with the kernel individually,
    while ``"flat"`` lowers the whole network into one flat
    struct-of-arrays component (:mod:`repro.network.flatcore`).  All
    four axes compose freely and are enforced bit-identical across the
    full sixteen-combination cube by ``tests/test_link_equivalence.py``.
    """

    def __init__(self, config: SimulationConfig, kernel_mode: str = "activity") -> None:
        if kernel_mode not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {kernel_mode!r}; expected one of {KERNEL_MODES}"
            )
        if config.replications > 1:
            raise ValueError(
                "NetworkSimulator runs a single seed; submit configurations "
                f"with replications={config.replications} through an "
                "execution backend (repro.exec.backend), which fans them "
                "into per-seed replicates and merges the results with "
                "confidence intervals"
            )
        self._config = config
        self._rng = SimulationRNG(seed=config.seed)
        self._topology = build_topology(config)
        self._table = build_table(config, self._topology)
        self._routing = build_routing(config, self._topology, self._table)
        self._router_config = RouterConfig(
            vcs_per_port=config.vcs_per_port,
            buffer_depth=config.buffer_depth,
            pipeline=pipeline_by_name(config.pipeline),
            link_delay=config.link_delay,
            link_delays=config.link_delays,
            credit_delay=config.credit_delay,
            switch_mode=config.switch_mode,
            link_mode=config.link_mode,
        )
        if config.workload is not None:
            # Closed-loop run: the workload DAG replaces the stochastic
            # generator.  Every transfer is "measured" (warmup 0), so the
            # existing all-delivered stop condition ends the run exactly
            # when the DAG drains; the traffic self-throttles, so there
            # is no offered rate and no saturation flagging.
            workload_factory = registry.WORKLOADS.get(config.workload)
            dag = workload_factory(config, self._topology)
            self._workload = WorkloadEngine(dag, self._topology.num_nodes)
            self._generator = None
            sources = self._workload.sources()
            self._stats = StatsCollector(
                warmup_messages=0,
                measure_messages=dag.num_transfers if dag.num_transfers else None,
                num_nodes=self._topology.num_nodes,
                keep_samples=config.keep_samples,
            )
            self._stats.add_delivery_callback(self._workload.on_delivered)
            self._message_rate = 0.0
            hop = self._router_config.pipeline.hop_latency(
                self._router_config.max_link_delay
            )
            self._critical_path = dag.critical_path_cycles(
                lambda step: (self._topology.distance(step.src, step.dst) + 1) * hop
                + (step.flits - 1)
            )
            self._workload_flits = dag.total_flits
        else:
            self._workload = None
            self._critical_path = 0
            self._workload_flits = 0
            message_rate = message_rate_for_load(
                self._topology, config.message_length, config.normalized_load
            )
            pattern = make_pattern(config.traffic, self._topology)
            process = _build_injection(config, message_rate)
            self._generator = TrafficGenerator(
                topology=self._topology,
                pattern=pattern,
                process=process,
                message_length=config.message_length,
                rng=self._rng,
                max_messages=config.total_messages,
            )
            sources = self._generator.sources()
            self._stats = StatsCollector(
                warmup_messages=config.warmup_messages,
                measure_messages=config.measure_messages,
                num_nodes=self._topology.num_nodes,
                keep_samples=config.keep_samples,
            )
            # The rate the injection process actually offers (Bernoulli
            # clamps super-unit rates); used for the cycle budget and the
            # result.
            self._message_rate = process.rate
        self._network = Network(
            topology=self._topology,
            router_config=self._router_config,
            routing=self._routing,
            selector_factory=self._make_selector,
            stats=self._stats,
            sources=sources,
        )
        self._kernel = SimulationKernel(mode=kernel_mode)
        core_schedule = core_schedule_by_name(config.core_mode)
        if core_schedule.flat:
            self._core = FlatNetworkCore(self._network, self._stats)
            self._kernel.register(self._core)
        else:
            self._core = None
            self._kernel.register_all(self._network.components())
        if self._workload is not None:
            # Released DAG steps must re-arm their home node's interface
            # in whichever core executes the network.
            if self._core is not None:
                core = self._core
                self._workload.attach_wakes(
                    [
                        (lambda cycle, node=node: core.wake_interface(node, cycle))
                        for node in range(self._topology.num_nodes)
                    ]
                )
            else:
                self._workload.attach_wakes(
                    [interface.wake_source for interface in self._network.interfaces]
                )
        if self._workload is not None:
            # Stop when the whole DAG drains (trailing compute steps may
            # finish after the last transfer is delivered).
            self._kernel.add_stop_condition(lambda cycle: self._workload.drained)
        else:
            self._kernel.add_stop_condition(
                lambda cycle: self._stats.all_measured_delivered()
            )

    def _make_selector(self, node: int):
        return make_selector(self._config.selector, self._rng.stream(f"selector-{node}"))

    # -- accessors -------------------------------------------------------------------

    @property
    def config(self) -> SimulationConfig:
        """The configuration being simulated."""
        return self._config

    @property
    def network(self) -> Network:
        """The assembled network (exposed for tests and introspection)."""
        return self._network

    @property
    def core(self) -> Optional[FlatNetworkCore]:
        """The flat core when ``core_mode == "flat"``, else None (the
        object components are reachable through :attr:`network`)."""
        return self._core

    @property
    def workload(self) -> Optional[WorkloadEngine]:
        """The closed-loop workload engine when ``config.workload`` is
        set, else None (open-loop stochastic traffic)."""
        return self._workload

    @property
    def topology(self) -> Topology:
        """The topology being simulated."""
        return self._topology

    @property
    def table(self) -> RoutingTable:
        """The routing table organisation in use."""
        return self._table

    @property
    def stats(self) -> StatsCollector:
        """The statistics collector fed by the network interfaces."""
        return self._stats

    @property
    def effective_message_rate(self) -> float:
        """Per-node message rate (messages/cycle) the injection process
        actually offers -- differs from the configured load only when a
        Bernoulli process clamps a super-unit rate."""
        return self._message_rate

    # -- analytics ---------------------------------------------------------------------

    def zero_load_latency(self) -> float:
        """Analytic contention-free latency of an average message (cycles).

        The header crosses ``average distance + 1`` router pipelines (the
        +1 accounts for injection/ejection overhead at the endpoints) and
        the remaining flits add one cycle each of serialization.  With
        per-dimension ``link_delays`` the slowest link bounds the
        estimate (it is a budget heuristic, not a prediction).
        """
        hop = self._router_config.pipeline.hop_latency(
            self._router_config.max_link_delay
        )
        average_distance = self._topology.average_distance()
        return (average_distance + 1.0) * hop + (self._config.message_length - 1)

    def default_max_cycles(self) -> int:
        """Cycle budget derived from the offered load and drain factor.

        Closed-loop workload runs have no offered rate; their budget is
        derived from the DAG's contention-free critical path plus the
        total flit volume (a crude upper bound on serialization delay
        under contention), scaled by the drain factor.
        """
        if self._workload is not None:
            budget = (self._critical_path + self._workload_flits) * (
                self._config.drain_factor
            )
            budget += 20 * self.zero_load_latency() + 2_000
            return int(budget)
        total_rate = self._message_rate * self._topology.num_nodes
        if total_rate <= 0:
            return 10_000
        generation_cycles = self._config.total_messages / total_rate
        budget = generation_cycles * self._config.drain_factor
        budget += 20 * self.zero_load_latency() + 2_000
        return int(budget)

    # -- running ------------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimulationResult:
        """Run until every measured message is delivered or the cycle budget
        is exhausted, then summarise."""
        if max_cycles is None:
            max_cycles = (
                self._config.max_cycles
                if self._config.max_cycles is not None
                else self.default_max_cycles()
            )
        self._kernel.run(max_cycles)
        cycles = self._kernel.clock.now
        zero_load = self.zero_load_latency()
        if self._workload is not None:
            # Closed-loop traffic self-throttles: the saturation heuristic
            # is meaningless, and the result carries drain metrics instead.
            summary = self._stats.summary(cycles, saturated=False)
            drain = self._workload.drain_metrics(cycles, self._critical_path)
        else:
            preliminary = self._stats.summary(cycles)
            saturated = is_saturated(preliminary, zero_load, SaturationPolicy())
            summary = self._stats.summary(cycles, saturated=saturated)
            drain = None
        return SimulationResult(
            config=self._config,
            summary=summary,
            zero_load_latency=zero_load,
            cycles=cycles,
            effective_message_rate=self._message_rate,
            drain=drain,
        )

    def __repr__(self) -> str:
        return f"NetworkSimulator(config={self._config!r})"
