"""Load sweeps: the latency-versus-normalized-load curves of the paper.

The sweep now lives in the declarative scenario layer as the built-in
``sweep`` study (:func:`repro.scenario.builtin.sweep_study`);
:func:`run_load_sweep` survives as a thin shim that builds the study,
runs it through :func:`repro.scenario.run_study` and converts the result
back into :class:`LoadSweepPoint` objects (bit-identical to the
historical implementation -- enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.backend import ExecutionBackend

__all__ = ["LoadSweepPoint", "run_load_sweep"]


@dataclass(frozen=True)
class LoadSweepPoint:
    """One point of a latency/load curve."""

    normalized_load: float
    result: SimulationResult

    @property
    def latency(self) -> float:
        """Average total latency at this load."""
        return self.result.latency

    @property
    def saturated(self) -> bool:
        """Whether the network was saturated at this load."""
        return self.result.saturated


def run_load_sweep(
    base_config: SimulationConfig,
    loads: Sequence[float],
    stop_at_saturation: bool = True,
    backend: Optional[ExecutionBackend] = None,
) -> List[LoadSweepPoint]:
    """Simulate ``base_config`` at each normalized load in ``loads``.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.sweep_study(...))``.

    When ``stop_at_saturation`` is True the sweep stops after the first
    saturated point (the paper only presents loads "leading up to network
    saturation"); the saturated point itself is included so tables can
    print "Sat." rows.  Points are submitted through ``backend`` (default:
    a fresh :class:`~repro.exec.backend.SerialBackend`); with saturation
    stopping, loads are evaluated in waves of ``backend.wave_size`` points
    so a parallel backend keeps its workers busy, and the returned curve
    is always truncated at the first saturated load.
    """
    warnings.warn(
        "run_load_sweep() is deprecated; run the 'sweep' Study instead "
        "(repro.scenario.builtin.sweep_study + repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenario.builtin import sweep_study
    from repro.scenario.runner import run_study

    study = sweep_study(base_config, loads, stop_at_saturation=stop_at_saturation)
    outcome = run_study(study, backend=backend)
    return [
        LoadSweepPoint(normalized_load=point.config.normalized_load, result=result)
        for point, result in zip(outcome.points, outcome.results)
    ]
