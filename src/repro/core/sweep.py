"""Load sweeps: the latency-versus-normalized-load curves of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.simulator import NetworkSimulator

__all__ = ["LoadSweepPoint", "run_load_sweep"]


@dataclass(frozen=True)
class LoadSweepPoint:
    """One point of a latency/load curve."""

    normalized_load: float
    result: SimulationResult

    @property
    def latency(self) -> float:
        """Average total latency at this load."""
        return self.result.latency

    @property
    def saturated(self) -> bool:
        """Whether the network was saturated at this load."""
        return self.result.saturated


def run_load_sweep(
    base_config: SimulationConfig,
    loads: Sequence[float],
    stop_at_saturation: bool = True,
) -> List[LoadSweepPoint]:
    """Simulate ``base_config`` at each normalized load in ``loads``.

    When ``stop_at_saturation`` is True the sweep stops after the first
    saturated point (the paper only presents loads "leading up to network
    saturation"); the saturated point itself is included so tables can
    print "Sat." rows.
    """
    points: List[LoadSweepPoint] = []
    for load in loads:
        config = base_config.variant(normalized_load=load)
        result = NetworkSimulator(config).run()
        points.append(LoadSweepPoint(normalized_load=load, result=result))
        if stop_at_saturation and result.saturated:
            break
    return points
