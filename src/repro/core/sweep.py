"""Load sweeps: the latency-versus-normalized-load curves of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["LoadSweepPoint", "run_load_sweep"]


@dataclass(frozen=True)
class LoadSweepPoint:
    """One point of a latency/load curve."""

    normalized_load: float
    result: SimulationResult

    @property
    def latency(self) -> float:
        """Average total latency at this load."""
        return self.result.latency

    @property
    def saturated(self) -> bool:
        """Whether the network was saturated at this load."""
        return self.result.saturated


def run_load_sweep(
    base_config: SimulationConfig,
    loads: Sequence[float],
    stop_at_saturation: bool = True,
    backend: Optional[ExecutionBackend] = None,
) -> List[LoadSweepPoint]:
    """Simulate ``base_config`` at each normalized load in ``loads``.

    When ``stop_at_saturation`` is True the sweep stops after the first
    saturated point (the paper only presents loads "leading up to network
    saturation"); the saturated point itself is included so tables can
    print "Sat." rows.

    Points are submitted through ``backend`` (default: a fresh
    :class:`~repro.exec.backend.SerialBackend`).  With saturation stopping,
    loads are evaluated in waves of ``backend.wave_size`` points so a
    parallel backend keeps its workers busy; the returned curve is always
    truncated at the first saturated load, identical to the serial result
    (a parallel wave may merely simulate -- and cache -- a few points past
    saturation).
    """
    backend = backend if backend is not None else SerialBackend()
    loads = list(loads)
    points: List[LoadSweepPoint] = []
    if not stop_at_saturation:
        results = backend.run_configs(
            [base_config.variant(normalized_load=load) for load in loads]
        )
        return [
            LoadSweepPoint(normalized_load=load, result=result)
            for load, result in zip(loads, results)
        ]
    wave_size = max(1, backend.wave_size)
    for start in range(0, len(loads), wave_size):
        wave = loads[start : start + wave_size]
        results = backend.run_configs(
            [base_config.variant(normalized_load=load) for load in wave]
        )
        for load, result in zip(wave, results):
            points.append(LoadSweepPoint(normalized_load=load, result=result))
            if result.saturated:
                return points
    return points
