"""Result records and plain-text report formatting."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.stats.latency import LatencySummary

__all__ = [
    "SimulationResult",
    "format_rows",
    "format_value",
    "render_campaign_header",
    "render_report_section",
]


@dataclass(frozen=True)
class SimulationResult:
    """Everything produced by one simulation run."""

    #: The configuration that was simulated.
    config: SimulationConfig
    #: Aggregated latency/throughput statistics.
    summary: LatencySummary
    #: Analytic contention-free latency of an average message (cycles).
    zero_load_latency: float
    #: Cycles actually simulated.
    cycles: int
    #: Per-node message rate (messages/cycle) the injection process
    #: actually offered.  Differs from the rate implied by the configured
    #: normalized load only when a Bernoulli process clamps a super-unit
    #: rate (the simulator warns when that happens).  0.0 in results
    #: recorded before this field existed.
    effective_message_rate: float = 0.0
    #: Drain metrics of a closed-loop workload run (see
    #: :meth:`repro.workload.engine.WorkloadEngine.drain_metrics`), or
    #: None for open-loop runs and results recorded before this field
    #: existed.
    drain: Optional[Dict[str, object]] = None
    #: Replication block of a merged multi-seed result (see
    #: :func:`repro.stats.confidence.merge_replicates`): replicate count,
    #: seeds, and mean +- Student-t confidence intervals of latency and
    #: throughput across the replicate means.  None for single-seed runs.
    replicates: Optional[Dict[str, object]] = None

    @property
    def saturated(self) -> bool:
        """Whether the run was flagged as saturated."""
        return self.summary.saturated

    @property
    def latency(self) -> float:
        """Shorthand for the average total latency in cycles."""
        return self.summary.avg_total_latency

    def latency_label(self, precision: int = 1) -> str:
        """The latency formatted the way the paper's tables print it
        ("Sat." for saturated points, "n/a" when the run measured nothing
        without being saturated -- an insufficient cycle budget)."""
        if self.saturated:
            return "Sat."
        if self.summary.measured == 0:
            return "n/a"
        return f"{self.latency:.{precision}f}"

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dictionary capturing the full result."""
        return {
            "config": self.config.to_dict(),
            "summary": self.summary.as_dict(),
            "zero_load_latency": self.zero_load_latency,
            "cycles": self.cycles,
            "effective_message_rate": self.effective_message_rate,
            "drain": self.drain,
            "replicates": self.replicates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            config=SimulationConfig.from_dict(data["config"]),
            summary=LatencySummary.from_dict(data["summary"]),
            zero_load_latency=float(data["zero_load_latency"]),
            cycles=int(data["cycles"]),
            effective_message_rate=float(data.get("effective_message_rate", 0.0)),
            drain=data.get("drain"),
            replicates=data.get("replicates"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize this result as a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        """Deserialize a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary (config highlights plus summary) for reports."""
        return {
            "pipeline": self.config.pipeline,
            "routing": self.config.routing,
            "table": self.config.table,
            "selector": self.config.selector,
            "traffic": self.config.traffic,
            "load": self.config.normalized_load,
            "latency": self.latency,
            "network_latency": self.summary.avg_network_latency,
            "hops": self.summary.avg_hops,
            "throughput": self.summary.throughput,
            "saturated": self.saturated,
            "cycles": self.cycles,
        }


def format_value(value: object, precision: int = 1) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 1,
) -> str:
    """Render a list of dictionaries as an aligned plain-text table.

    Used by the examples and the benchmark harness to print the
    reproduced tables/figures in a shape comparable to the paper's.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def render_report_section(
    title: str,
    paper_claim: str,
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 2,
) -> str:
    """One experiment section of a campaign/study Markdown report.

    The single renderer behind both the legacy ``ExperimentReport`` and
    the scenario layer's ``StudyResult`` -- one format, no drift.
    """
    table = format_rows(rows, columns=columns, precision=precision)
    return (
        f"### {title}\n\n"
        f"*Paper claim:* {paper_claim}\n\n"
        f"```\n{table}\n```\n"
    )


def render_campaign_header(config: SimulationConfig) -> str:
    """The base-configuration header of a campaign/suite Markdown report."""
    return (
        "## Reproduction campaign\n\n"
        f"Base configuration: {config.mesh_dims[0]}x{config.mesh_dims[1]} mesh, "
        f"{config.message_length}-flit messages, "
        f"{config.vcs_per_port} VCs/channel, "
        f"{config.measure_messages} measured messages per point, "
        f"seed {config.seed}.\n\n"
    )
