"""Simulation configuration.

:class:`SimulationConfig` is the single record describing one simulation
run: topology, router microarchitecture, routing algorithm, routing-table
organisation, path-selection heuristic, traffic and measurement windows.
It is deliberately plain data (strings and numbers) so configurations can
be copied, varied in sweeps and embedded in results; the
:class:`~repro.core.simulator.NetworkSimulator` turns it into objects.

:class:`PaperDefaults` collects the constants of Table 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

__all__ = ["PaperDefaults", "SimulationConfig"]


class PaperDefaults:
    """The simulation parameters of Table 2 of the paper."""

    #: 256-node two-dimensional mesh.
    MESH_DIMS: Tuple[int, int] = (16, 16)
    #: Message length in flits.
    MESSAGE_LENGTH: int = 20
    #: Virtual channels per physical channel.
    VCS_PER_PORT: int = 4
    #: Input buffering per physical channel in flits (20 flits across 4 VCs).
    BUFFER_PER_CHANNEL: int = 20
    #: Flit buffer depth per virtual channel.
    BUFFER_DEPTH: int = BUFFER_PER_CHANNEL // VCS_PER_PORT
    #: Link traversal delay in cycles.
    LINK_DELAY: int = 1
    #: Contention-free router latency (cycles) without look-ahead.
    PROUD_LATENCY: int = 5
    #: Contention-free router latency (cycles) with look-ahead.
    LA_PROUD_LATENCY: int = 4
    #: Warm-up messages before statistics are collected.
    WARMUP_MESSAGES: int = 10_000
    #: Messages measured after warm-up.
    MEASURE_MESSAGES: int = 400_000
    #: Traffic patterns evaluated by the paper.
    TRAFFIC_PATTERNS: Tuple[str, ...] = ("uniform", "transpose", "bit-reversal", "shuffle")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete description of one simulation run."""

    # -- topology -----------------------------------------------------------------
    #: Mesh/torus extent per dimension, e.g. ``(16, 16)``.
    mesh_dims: Tuple[int, ...] = (8, 8)
    #: Use wraparound (torus) links instead of a mesh.
    torus: bool = False
    #: Topology registry name (``"mesh"``, ``"torus"``, ``"torus3d"`` or a
    #: plugin).  Empty selects automatically from ``torus``: ``"torus"``
    #: when set, ``"mesh"`` otherwise.  Setting both ``torus=True`` and
    #: ``topology="mesh"`` is a contradiction and fails validation.
    topology: str = ""
    #: Optional per-dimension link delays: entry ``d`` is the traversal
    #: time of every dimension-``d`` router link (e.g. slow TSV Z-links
    #: on a stacked 3-D torus).  ``None`` keeps the uniform
    #: ``link_delay``.  Length must match ``mesh_dims``.
    link_delays: Optional[Tuple[int, ...]] = None

    # -- router microarchitecture ----------------------------------------------------
    #: Virtual channels per physical channel.
    vcs_per_port: int = 4
    #: Flit buffer depth per virtual channel.
    buffer_depth: int = 5
    #: Router pipeline: ``"proud"`` (5-stage) or ``"la-proud"`` (4-stage).
    pipeline: str = "la-proud"
    #: Link traversal delay in cycles.
    link_delay: int = 1
    #: Credit return delay in cycles.
    credit_delay: int = 1
    #: Router busy-path schedule: ``"batched"`` (flat pass over the active
    #: virtual-channel set, the default) or ``"reference"`` (per-channel
    #: traversal kept as the executable specification).  Both schedules
    #: are bit-identical; see :mod:`repro.router.switch`.
    switch_mode: str = "batched"
    #: Link-transport schedule: ``"batched"`` (per-link arrival lanes
    #: drained by due-span slices, the default) or ``"reference"``
    #: (per-flit mailbox tuple deques kept as the executable
    #: specification).  Both schedules are bit-identical; see
    #: :mod:`repro.network.link`.
    link_mode: str = "batched"
    #: Core schedule: ``"flat"`` (the whole network lowered into one
    #: flat struct-of-arrays kernel component, the default) or
    #: ``"objects"`` (the per-component router/interface network kept as
    #: the executable specification).  Both schedules are bit-identical;
    #: see :mod:`repro.network.flatcore`.
    core_mode: str = "flat"

    # -- routing -----------------------------------------------------------------------
    #: ``"duato"``, ``"dimension-order"``, ``"north-last"``, ``"west-first"`` or
    #: ``"negative-first"``.
    routing: str = "duato"
    #: Escape virtual channels reserved per physical channel (Duato only).
    num_escape_vcs: int = 1
    #: Routing-table organisation: ``"full"``, ``"economical"``, ``"meta-row"``,
    #: ``"meta-block"`` or ``"interval"``.
    table: str = "economical"
    #: Path-selection heuristic: ``"static-xy"``, ``"min-mux"``, ``"lfu"``,
    #: ``"lru"``, ``"max-credit"``, ``"random"`` or ``"first-free"``.
    selector: str = "static-xy"

    # -- traffic --------------------------------------------------------------------------
    #: Traffic pattern name (see :mod:`repro.traffic.patterns`).
    traffic: str = "uniform"
    #: Normalized load (1.0 saturates the bisection under uniform traffic).
    normalized_load: float = 0.2
    #: Message length in flits.
    message_length: int = 20
    #: Injection process: ``"exponential"`` (paper) or ``"bernoulli"``.
    injection: str = "exponential"

    # -- closed-loop workload ---------------------------------------------------------
    #: Closed-loop workload name (registry kind ``"workload"``:
    #: ``"request-reply"``, ``"allreduce"``, ``"alltoall"``,
    #: ``"llm-decode"``, ``"trace"``) or None for the open-loop
    #: stochastic traffic above.  When set, the ``traffic``/
    #: ``normalized_load``/``injection``/measurement-window fields are
    #: ignored: the run injects exactly the workload DAG's transfers and
    #: ends when it drains (see :mod:`repro.workload`).
    workload: Optional[str] = None
    #: Iterations (request chains, collective repetitions) per workload.
    workload_iters: int = 4
    #: Outstanding request/reply exchanges allowed per client
    #: (``request-reply`` only).
    workload_window: int = 2
    #: Model layers (``llm-decode`` only).
    workload_layers: int = 2
    #: Hidden dimension in flits: collective transfers carry
    #: ``max(1, workload_hidden // group)`` flits each.
    workload_hidden: int = 64
    #: Collective group / tensor-parallel degree in nodes (0 = every
    #: node; ``llm-decode`` defaults 0 to ``min(4, num_nodes)``).
    workload_group: int = 0
    #: Compute delay in cycles per model-layer step (``llm-decode``).
    workload_compute: int = 4
    #: JSON DAG file replayed by the ``trace`` workload.
    workload_trace: str = ""

    # -- measurement -----------------------------------------------------------------------
    #: Messages injected before statistics collection starts.
    warmup_messages: int = 200
    #: Messages measured after warm-up.
    measure_messages: int = 2_000
    #: Hard cycle limit (None = derive one from the offered load).
    max_cycles: Optional[int] = None
    #: Extra cycles allowed for in-flight messages to drain after generation.
    drain_factor: float = 4.0
    #: Master random seed.
    seed: int = 1
    #: Retain per-message latency samples (enables percentiles).
    keep_samples: bool = False
    #: Seed-offset replicate runs per point.  1 (the default) is a single
    #: run; larger values fan the point into ``replications`` runs at
    #: seeds ``seed, seed + seed_stride, ...`` when submitted through an
    #: :class:`~repro.exec.backend.ExecutionBackend`, which merges them
    #: into one result with confidence intervals (see
    #: :mod:`repro.stats.confidence`).  Each replicate occupies its own
    #: cache slot, shared with plain single-seed runs at the same seed.
    replications: int = 1
    #: Seed increment between consecutive replicates.
    seed_stride: int = 1

    def __post_init__(self) -> None:
        # Normalize sequence fields to tuples so every construction path
        # (JSON lists included) yields an equal, hashable config.
        if not isinstance(self.mesh_dims, tuple):
            object.__setattr__(self, "mesh_dims", tuple(self.mesh_dims))
        if self.link_delays is not None and not isinstance(self.link_delays, tuple):
            object.__setattr__(self, "link_delays", tuple(self.link_delays))
        if len(self.mesh_dims) < 1:
            raise ValueError("mesh_dims needs at least one dimension")
        if self.torus and self.topology == "mesh":
            raise ValueError(
                "SimulationConfig: torus=True contradicts topology='mesh'; "
                "drop one of the two (topology='' selects from the torus "
                "flag automatically)"
            )
        if self.link_delays is not None:
            if len(self.link_delays) != len(self.mesh_dims):
                raise ValueError(
                    "link_delays needs one entry per dimension: got "
                    f"{len(self.link_delays)} delays for "
                    f"{len(self.mesh_dims)} dimensions"
                )
            if any(delay < 1 for delay in self.link_delays):
                raise ValueError(
                    "every per-dimension link delay needs at least one "
                    f"cycle, got link_delays={self.link_delays}"
                )
        if self.normalized_load < 0:
            raise ValueError("normalized load cannot be negative")
        if self.message_length < 1:
            raise ValueError("messages are at least one flit long")
        if self.warmup_messages < 0 or self.measure_messages < 1:
            raise ValueError("invalid measurement window")
        if self.workload_iters < 1:
            raise ValueError("workload_iters must be at least 1")
        if self.workload_window < 1:
            raise ValueError("workload_window must be at least 1")
        if self.workload_layers < 1:
            raise ValueError("workload_layers must be at least 1")
        if self.workload_hidden < 1:
            raise ValueError("workload_hidden must be at least 1 flit")
        if self.workload_group < 0:
            raise ValueError("workload_group cannot be negative (0 = all nodes)")
        if self.workload_compute < 0:
            raise ValueError("workload_compute cannot be negative")
        if self.replications < 1:
            raise ValueError("replications must be at least 1")
        if self.seed_stride < 1:
            # A zero stride would run the same seed repeatedly and report
            # a spurious zero-width confidence interval.
            raise ValueError("seed_stride must be at least 1")
        self.validate()

    def validate(self) -> None:
        """Check every registry-backed string field against its registry.

        Runs eagerly at construction (``__post_init__``), so a typo in
        ``traffic``/``routing``/``table``/``selector``/``pipeline``/
        ``injection`` raises a ``ValueError`` naming the bad value and the
        sorted registered alternatives instead of failing deep inside
        network assembly.  Register plugin components (see
        :mod:`repro.registry`) *before* constructing configurations that
        name them.
        """
        from repro.registry import validate_config_names

        validate_config_names(self)

    # -- convenience constructors -------------------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "SimulationConfig":
        """The paper's full-scale configuration (Table 2).

        A pure-Python flit-level simulation of 410,000 messages on a 16x16
        mesh takes hours; use :meth:`small` for day-to-day work and this
        configuration when absolute fidelity matters more than runtime.
        """
        base = cls(
            mesh_dims=PaperDefaults.MESH_DIMS,
            vcs_per_port=PaperDefaults.VCS_PER_PORT,
            buffer_depth=PaperDefaults.BUFFER_DEPTH,
            pipeline="la-proud",
            link_delay=PaperDefaults.LINK_DELAY,
            message_length=PaperDefaults.MESSAGE_LENGTH,
            warmup_messages=PaperDefaults.WARMUP_MESSAGES,
            measure_messages=PaperDefaults.MEASURE_MESSAGES,
        )
        return replace(base, **overrides)

    @classmethod
    def small(cls, **overrides) -> "SimulationConfig":
        """A scaled-down configuration preserving the paper's shape.

        8x8 mesh, 20-flit messages, 4 VCs: small enough for tests and the
        benchmark harness, large enough to show the adaptive-routing and
        look-ahead effects.
        """
        base = cls(
            mesh_dims=(8, 8),
            warmup_messages=150,
            measure_messages=1_200,
        )
        return replace(base, **overrides)

    @classmethod
    def tiny(cls, **overrides) -> "SimulationConfig":
        """A minimal configuration for unit tests (4x4 mesh, short messages)."""
        base = cls(
            mesh_dims=(4, 4),
            message_length=4,
            warmup_messages=20,
            measure_messages=200,
        )
        return replace(base, **overrides)

    def variant(self, **overrides) -> "SimulationConfig":
        """A copy of this configuration with selected fields replaced."""
        return replace(self, **overrides)

    def replicate_configs(self) -> Tuple["SimulationConfig", ...]:
        """The single-seed configurations this point fans out into.

        ``(self,)`` when ``replications == 1``; otherwise one copy per
        replicate at seeds ``seed + k * seed_stride`` with
        ``replications``/``seed_stride`` normalized back to 1, so each
        replicate is an ordinary single-run cache slot -- identical to
        (and shared with) a plain run at that seed.
        """
        if self.replications == 1:
            return (self,)
        return tuple(
            replace(
                self,
                seed=self.seed + index * self.seed_stride,
                replications=1,
                seed_stride=1,
            )
            for index in range(self.replications)
        )

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-compatible dictionary of every field.

        Tuples become lists, and float-typed fields are rendered as floats
        even when an int was passed (``normalized_load=1`` vs ``1.0``), so
        equal configurations always serialize -- and hash -- identically.
        """
        data: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = list(value)
            elif value is not None and "float" in str(spec.type):
                value = float(value)
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys are ignored so caches written by newer versions with
        extra fields still load (missing fields fall back to defaults).
        """
        known = {spec.name for spec in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if "mesh_dims" in kwargs:
            kwargs["mesh_dims"] = tuple(int(extent) for extent in kwargs["mesh_dims"])
        if kwargs.get("link_delays") is not None:
            kwargs["link_delays"] = tuple(
                int(delay) for delay in kwargs["link_delays"]
            )
        return cls(**kwargs)

    @property
    def num_nodes(self) -> int:
        """Total node count of the configured topology."""
        total = 1
        for extent in self.mesh_dims:
            total *= extent
        return total

    @property
    def total_messages(self) -> int:
        """Warm-up plus measured messages."""
        return self.warmup_messages + self.measure_messages
