"""Table 4: performance of the routing-table storage schemes.

The paper compares, per traffic pattern and load:

* meta-table routing programmed for *maximal* adaptivity (block cluster
  mapping, the paper's "Meta-Tbl Adp." column),
* meta-table routing programmed for *minimal* adaptivity (row cluster
  mapping, the "Meta-Tbl Det." column, equivalent to deterministic
  dimension-order routing), and
* full-table routing, whose performance is identical to the proposed
  economical-storage table (the "Full-Tbl-Adp. / Econ. Storage" column).

Saturated points are reported as "Sat." just like the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.experiments._grid import run_traffic_load_grid
from repro.exec.backend import ExecutionBackend

__all__ = ["TABLE_SCHEMES", "run_table_storage_study"]

#: Column name -> table organisation, in the paper's column order.
TABLE_SCHEMES: Dict[str, str] = {
    "meta_adaptive": "meta-block",
    "meta_deterministic": "meta-row",
    "economical": "economical",
}


def run_table_storage_study(
    base_config: SimulationConfig,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3),
    schemes: Dict[str, str] = None,
    include_full_table: bool = False,
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 4 for the given patterns and loads.

    Returns one row per (traffic, load) with each scheme's latency, its
    saturation flag and a printable label ("Sat." when saturated).  Set
    ``include_full_table`` to also simulate the full-table organisation
    explicitly and confirm it matches the economical-storage column.  The
    whole (traffic, load, scheme) cross product is submitted as one batch
    through ``backend``.
    """
    if schemes is None:
        schemes = dict(TABLE_SCHEMES)
    if include_full_table and "full" not in schemes.values():
        schemes = dict(schemes)
        schemes["full_table"] = "full"

    def config_of(traffic: str, load: float, cell) -> SimulationConfig:
        _, table = cell
        return base_config.variant(
            traffic=traffic,
            normalized_load=load,
            table=table,
            routing="duato",
            pipeline="la-proud",
        )

    def fill_row(row: Dict[str, object], cell, result) -> None:
        column, _ = cell
        row[f"{column}_latency"] = result.latency
        row[f"{column}_saturated"] = result.saturated
        row[f"{column}_label"] = result.latency_label()

    cells = [
        (traffic, load, (column, table))
        for traffic in traffic_patterns
        for load in loads
        for column, table in schemes.items()
    ]
    return run_traffic_load_grid(cells, config_of, fill_row, backend=backend)
