"""Table 4: routing-table storage schemes (deprecation shim).

The experiment now lives in the declarative scenario layer as the
built-in ``table4`` study
(:func:`repro.scenario.builtin.table_storage_study`);
:func:`run_table_storage_study` survives as a thin shim over
:func:`repro.scenario.run_study` returning the same rows as the
historical implementation (enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.exec.backend import ExecutionBackend
from repro.scenario.builtin import TABLE_SCHEMES, table_storage_study
from repro.scenario.runner import run_study

__all__ = ["TABLE_SCHEMES", "run_table_storage_study"]


def run_table_storage_study(
    base_config: SimulationConfig,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3),
    schemes: Optional[Dict[str, str]] = None,
    include_full_table: bool = False,
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 4 for the given patterns and loads.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.table_storage_study(...))``.

    Returns one row per (traffic, load) with each scheme's latency, its
    saturation flag and a printable label ("Sat." when saturated).  Set
    ``include_full_table`` to also simulate the full-table organisation
    explicitly and confirm it matches the economical-storage column.
    """
    warnings.warn(
        "run_table_storage_study() is deprecated; run the 'table4' Study "
        "instead (repro.scenario.builtin.table_storage_study + "
        "repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    study = table_storage_study(
        base_config,
        traffic_patterns=traffic_patterns,
        loads=loads,
        schemes=schemes,
        include_full_table=include_full_table,
    )
    return run_study(study, backend=backend).rows
