"""Figure 6: path-selection heuristics (deprecation shim).

The experiment now lives in the declarative scenario layer as the
built-in ``figure6`` study
(:func:`repro.scenario.builtin.path_selection_study`);
:func:`run_path_selection_study` survives as a thin shim over
:func:`repro.scenario.run_study` returning the same rows as the
historical implementation (enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.exec.backend import ExecutionBackend
from repro.scenario.builtin import PAPER_SELECTORS, path_selection_study
from repro.scenario.runner import run_study

__all__ = ["PAPER_SELECTORS", "run_path_selection_study"]


def run_path_selection_study(
    base_config: SimulationConfig,
    selectors: Sequence[str] = PAPER_SELECTORS,
    traffic_patterns: Sequence[str] = ("transpose",),
    loads: Sequence[float] = (0.2, 0.4),
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Figure 6 for the given heuristics, patterns and loads.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.path_selection_study(...))``.

    Returns one row per (traffic, load) with each heuristic's average
    latency (and a ``<name>_saturated`` flag per heuristic).
    """
    warnings.warn(
        "run_path_selection_study() is deprecated; run the 'figure6' Study "
        "instead (repro.scenario.builtin.path_selection_study + "
        "repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    study = path_selection_study(
        base_config,
        selectors=selectors,
        traffic_patterns=traffic_patterns,
        loads=loads,
    )
    return run_study(study, backend=backend).rows
