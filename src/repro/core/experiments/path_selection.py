"""Figure 6: performance of the path-selection heuristics.

The paper plots average latency versus load for five path-selection
heuristics (STATIC-XY, MIN-MUX, LFU, LRU, MAX-CREDIT) on the look-ahead
adaptive router, over the four traffic patterns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import SimulationConfig
from repro.core.simulator import NetworkSimulator

__all__ = ["PAPER_SELECTORS", "run_path_selection_study"]

#: The five heuristics evaluated in Figure 6, in the paper's legend order.
PAPER_SELECTORS = ("static-xy", "min-mux", "lfu", "lru", "max-credit")


def run_path_selection_study(
    base_config: SimulationConfig,
    selectors: Sequence[str] = PAPER_SELECTORS,
    traffic_patterns: Sequence[str] = ("transpose",),
    loads: Sequence[float] = (0.2, 0.4),
) -> List[Dict[str, object]]:
    """Reproduce Figure 6 for the given heuristics, patterns and loads.

    Returns one row per (traffic, load) with each heuristic's average
    latency (and a ``<name>_saturated`` flag per heuristic).
    """
    rows: List[Dict[str, object]] = []
    for traffic in traffic_patterns:
        for load in loads:
            row: Dict[str, object] = {"traffic": traffic, "load": load}
            for selector in selectors:
                config = base_config.variant(
                    traffic=traffic,
                    normalized_load=load,
                    selector=selector,
                    routing="duato",
                    pipeline="la-proud",
                )
                result = NetworkSimulator(config).run()
                row[f"{selector}_latency"] = result.latency
                row[f"{selector}_saturated"] = result.saturated
            rows.append(row)
    return rows
