"""Figure 6: performance of the path-selection heuristics.

The paper plots average latency versus load for five path-selection
heuristics (STATIC-XY, MIN-MUX, LFU, LRU, MAX-CREDIT) on the look-ahead
adaptive router, over the four traffic patterns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.experiments._grid import run_traffic_load_grid
from repro.exec.backend import ExecutionBackend

__all__ = ["PAPER_SELECTORS", "run_path_selection_study"]

#: The five heuristics evaluated in Figure 6, in the paper's legend order.
PAPER_SELECTORS = ("static-xy", "min-mux", "lfu", "lru", "max-credit")


def run_path_selection_study(
    base_config: SimulationConfig,
    selectors: Sequence[str] = PAPER_SELECTORS,
    traffic_patterns: Sequence[str] = ("transpose",),
    loads: Sequence[float] = (0.2, 0.4),
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Figure 6 for the given heuristics, patterns and loads.

    Returns one row per (traffic, load) with each heuristic's average
    latency (and a ``<name>_saturated`` flag per heuristic).  The whole
    (traffic, load, selector) cross product is submitted as one batch
    through ``backend``.
    """
    def config_of(traffic: str, load: float, selector) -> SimulationConfig:
        return base_config.variant(
            traffic=traffic,
            normalized_load=load,
            selector=selector,
            routing="duato",
            pipeline="la-proud",
        )

    def fill_row(row: Dict[str, object], selector, result) -> None:
        row[f"{selector}_latency"] = result.latency
        row[f"{selector}_saturated"] = result.saturated

    cells = [
        (traffic, load, selector)
        for traffic in traffic_patterns
        for load in loads
        for selector in selectors
    ]
    return run_traffic_load_grid(cells, config_of, fill_row, backend=backend)
