"""Shared batching helper for experiments sweeping a (traffic, load) grid."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["run_traffic_load_grid"]


def run_traffic_load_grid(
    cells: Sequence[Tuple[str, float, object]],
    config_of: Callable[[str, float, object], SimulationConfig],
    fill_row: Callable[[Dict[str, object], object, SimulationResult], None],
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Simulate a (traffic, load, variant) cross product as one batch.

    Submits one configuration per cell through ``backend``, then groups the
    results into one row per (traffic, load) -- each starting with
    ``{"traffic": ..., "load": ...}``, in first-appearance order -- and lets
    ``fill_row(row, variant, result)`` write the per-variant columns.
    """
    backend = backend if backend is not None else SerialBackend()
    results = backend.run_configs(
        [config_of(traffic, load, variant) for traffic, load, variant in cells]
    )
    rows: List[Dict[str, object]] = []
    row_of: Dict[Tuple[str, float], Dict[str, object]] = {}
    for (traffic, load, variant), result in zip(cells, results):
        row = row_of.get((traffic, load))
        if row is None:
            row = {"traffic": traffic, "load": load}
            row_of[(traffic, load)] = row
            rows.append(row)
        fill_row(row, variant, result)
    return rows
