"""Experiment runners, one per table/figure of the paper's evaluation.

Every runner takes a base :class:`~repro.core.config.SimulationConfig`
plus the sweep axes of the corresponding experiment and returns plain
row dictionaries, so the same code backs the examples, the benchmark
harness and EXPERIMENTS.md.

==================  ===============================================
Paper content       Runner
==================  ===============================================
Figure 5 (a-d)      :func:`repro.core.experiments.lookahead.run_lookahead_comparison`
Table 3             :func:`repro.core.experiments.message_length.run_message_length_study`
Figure 6 (a-d)      :func:`repro.core.experiments.path_selection.run_path_selection_study`
Table 4             :func:`repro.core.experiments.table_storage.run_table_storage_study`
Table 5             :func:`repro.core.experiments.cost_table.run_cost_table`
Figure 7            :func:`repro.core.experiments.es_programming.run_es_programming_example`
==================  ===============================================
"""

from repro.core.experiments.cost_table import run_cost_table
from repro.core.experiments.es_programming import run_es_programming_example
from repro.core.experiments.lookahead import ROUTER_VARIANTS, run_lookahead_comparison
from repro.core.experiments.message_length import run_message_length_study
from repro.core.experiments.path_selection import run_path_selection_study
from repro.core.experiments.table_storage import TABLE_SCHEMES, run_table_storage_study

__all__ = [
    "ROUTER_VARIANTS",
    "TABLE_SCHEMES",
    "run_cost_table",
    "run_es_programming_example",
    "run_lookahead_comparison",
    "run_message_length_study",
    "run_path_selection_study",
    "run_table_storage_study",
]
