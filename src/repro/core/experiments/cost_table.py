"""Table 5: storage-cost and property summary of the table organisations."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.tables.cost_model import table_cost_summary

__all__ = ["run_cost_table"]


def run_cost_table(
    num_nodes: int = 256,
    n_dims: int = 2,
    num_ports: Optional[int] = None,
    meta_levels: int = 2,
) -> List[Dict[str, object]]:
    """Reproduce Table 5 for a network of ``num_nodes`` nodes.

    The default arguments describe the paper's 256-node 2-D mesh; the Cray
    T3D comparison in Section 5.2.1 corresponds to
    ``run_cost_table(num_nodes=2048, n_dims=3)``.
    """
    summaries = table_cost_summary(
        num_nodes=num_nodes,
        n_dims=n_dims,
        num_ports=num_ports,
        meta_levels=meta_levels,
    )
    return [summary.as_row() for summary in summaries]
