"""Table 5: storage-cost and property summary of the table organisations.

The implementation is registered as the ``cost-table`` analytic in
:data:`repro.registry.ANALYTICS` and is what the built-in ``table5``
study runs; :func:`run_cost_table` survives as a deprecation shim.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from repro.registry import register
from repro.tables.cost_model import table_cost_summary

__all__ = ["run_cost_table"]


@register("analytic", "cost-table")
def _cost_table_rows(
    num_nodes: int = 256,
    n_dims: int = 2,
    num_ports: Optional[int] = None,
    meta_levels: int = 2,
) -> List[Dict[str, object]]:
    """Storage-cost summary rows of Table 5 for one network shape."""
    summaries = table_cost_summary(
        num_nodes=num_nodes,
        n_dims=n_dims,
        num_ports=num_ports,
        meta_levels=meta_levels,
    )
    return [summary.as_row() for summary in summaries]


def run_cost_table(
    num_nodes: int = 256,
    n_dims: int = 2,
    num_ports: Optional[int] = None,
    meta_levels: int = 2,
) -> List[Dict[str, object]]:
    """Reproduce Table 5 for a network of ``num_nodes`` nodes.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.cost_table_study(...))``.

    The default arguments describe the paper's 256-node 2-D mesh; the Cray
    T3D comparison in Section 5.2.1 corresponds to
    ``run_cost_table(num_nodes=2048, n_dims=3)``.
    """
    warnings.warn(
        "run_cost_table() is deprecated; run the 'table5' Study instead "
        "(repro.scenario.builtin.cost_table_study + repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _cost_table_rows(
        num_nodes=num_nodes,
        n_dims=n_dims,
        num_ports=num_ports,
        meta_levels=meta_levels,
    )
