"""Figure 5: look-ahead and adaptivity comparison (deprecation shim).

The experiment now lives in the declarative scenario layer as the
built-in ``figure5`` study (:func:`repro.scenario.builtin.lookahead_study`);
:func:`run_lookahead_comparison` survives as a thin shim that builds the
study and runs it through :func:`repro.scenario.run_study`, returning the
same rows as the historical implementation (enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.exec.backend import ExecutionBackend
from repro.scenario.builtin import ROUTER_VARIANTS, lookahead_study
from repro.scenario.runner import run_study

__all__ = ["ROUTER_VARIANTS", "run_lookahead_comparison"]


def run_lookahead_comparison(
    base_config: SimulationConfig,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3, 0.5),
    variants: Sequence[str] = tuple(ROUTER_VARIANTS),
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Figure 5 for the given patterns and loads.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.lookahead_study(...))``.

    Returns one row per (traffic, load) with the absolute latency of every
    router organisation and the percentage latency increase of each
    organisation over the LA ADAPT reference (positive = slower than
    LA ADAPT, the way the paper's bars read).  Loads are walked in order
    and the sweep stops at the reference router's saturation point.
    """
    warnings.warn(
        "run_lookahead_comparison() is deprecated; run the 'figure5' Study "
        "instead (repro.scenario.builtin.lookahead_study + "
        "repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    study = lookahead_study(
        base_config,
        traffic_patterns=traffic_patterns,
        loads=loads,
        variants=variants,
    )
    return run_study(study, backend=backend).rows
