"""Figure 5: look-ahead and adaptivity comparison.

The paper compares four router organisations -- deterministic and
adaptive, each with and without look-ahead -- over four traffic patterns,
reporting the percentage latency increase of each organisation relative to
the look-ahead adaptive router (LA ADAPT) plus the absolute LA ADAPT
latencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["ROUTER_VARIANTS", "run_lookahead_comparison"]

#: The four router organisations of Figure 5, as configuration overrides.
ROUTER_VARIANTS: Dict[str, Dict[str, str]] = {
    "no-la-det": {"pipeline": "proud", "routing": "dimension-order"},
    "no-la-adapt": {"pipeline": "proud", "routing": "duato"},
    "la-det": {"pipeline": "la-proud", "routing": "dimension-order"},
    "la-adapt": {"pipeline": "la-proud", "routing": "duato"},
}

#: The organisation every other one is normalised against.
_REFERENCE = "la-adapt"


def _variant_config(
    base: SimulationConfig, variant: str, traffic: str, load: float
) -> SimulationConfig:
    overrides = dict(ROUTER_VARIANTS[variant])
    return base.variant(traffic=traffic, normalized_load=load, **overrides)


def run_lookahead_comparison(
    base_config: SimulationConfig,
    traffic_patterns: Sequence[str] = ("uniform", "transpose"),
    loads: Sequence[float] = (0.1, 0.3, 0.5),
    variants: Sequence[str] = tuple(ROUTER_VARIANTS),
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Figure 5 for the given patterns and loads.

    Returns one row per (traffic, load) with the absolute latency of every
    router organisation and the percentage latency increase of each
    organisation over the LA ADAPT reference (positive = slower than
    LA ADAPT, the way the paper's bars read).

    The router organisations of each (traffic, load) point are submitted
    as one batch through ``backend``; loads are still walked in order so
    the sweep stops at the reference router's saturation point exactly as
    the serial code did.
    """
    backend = backend if backend is not None else SerialBackend()
    if _REFERENCE not in variants:
        variants = tuple(variants) + (_REFERENCE,)
    rows: List[Dict[str, object]] = []
    for traffic in traffic_patterns:
        for load in loads:
            batch = backend.run_configs(
                [
                    _variant_config(base_config, variant, traffic, load)
                    for variant in variants
                ]
            )
            results = dict(zip(variants, batch))
            reference = results[_REFERENCE]
            row: Dict[str, object] = {
                "traffic": traffic,
                "load": load,
                "la_adapt_latency": reference.latency,
                "la_adapt_saturated": reference.saturated,
            }
            for variant, result in results.items():
                if variant == _REFERENCE:
                    continue
                row[f"{variant}_latency"] = result.latency
                row[f"{variant}_saturated"] = result.saturated
                if reference.latency > 0:
                    increase = 100.0 * (result.latency - reference.latency) / reference.latency
                else:
                    increase = 0.0
                row[f"{variant}_pct_increase"] = increase
            rows.append(row)
            # The paper only plots loads up to saturation of the reference.
            if reference.saturated:
                break
    return rows
