"""Figure 7: economical-storage table programming for North-Last routing.

The paper programs the 9-entry economical-storage table of router (1, 1)
in a 3x3 mesh for North-Last partially adaptive routing, showing for every
destination the sign pair, the candidate minimal ports and the ports the
North-Last algorithm actually permits.

The implementation is registered as the ``es-programming`` analytic in
:data:`repro.registry.ANALYTICS` and is what the built-in ``figure7``
study runs; :func:`run_es_programming_example` survives as a deprecation
shim.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Sequence, Tuple

from repro.network.topology import MeshTopology
from repro.registry import register
from repro.routing.providers import minimal_adaptive_provider, north_last_provider
from repro.tables.economical import EconomicalStorageTable

__all__ = ["run_es_programming_example"]


def _port_names(topology: MeshTopology, ports: Tuple[int, ...]) -> str:
    names = {0: "local"}
    names[1] = "+X"
    names[2] = "-X"
    names[3] = "+Y"
    names[4] = "-Y"
    return ", ".join(names[port] for port in ports)


@register("analytic", "es-programming")
def _es_programming_rows(
    mesh_extent: int = 3, node_coords: Sequence[int] = (1, 1)
) -> List[Dict[str, object]]:
    """Figure 7(d) rows for the router at ``node_coords``."""
    topology = MeshTopology((mesh_extent, mesh_extent))
    node = topology.node_id(tuple(node_coords))
    adaptive_table = EconomicalStorageTable(
        topology, provider=minimal_adaptive_provider(topology)
    )
    north_last_table = EconomicalStorageTable(
        topology, provider=north_last_provider(topology)
    )
    rows: List[Dict[str, object]] = []
    for destination in range(topology.num_nodes):
        signs = topology.relative_signs(node, destination)
        rows.append(
            {
                "destination": topology.coordinates(destination),
                "sign_x": {1: "+", -1: "-", 0: "0"}[signs[0]],
                "sign_y": {1: "+", -1: "-", 0: "0"}[signs[1]],
                "candidate_ports": _port_names(
                    topology, adaptive_table.lookup(node, destination)
                ),
                "north_last_ports": _port_names(
                    topology, north_last_table.lookup(node, destination)
                ),
            }
        )
    return rows


def run_es_programming_example(
    mesh_extent: int = 3, node_coords: Tuple[int, int] = (1, 1)
) -> List[Dict[str, object]]:
    """Reproduce Figure 7(d) for the router at ``node_coords``.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.es_programming_study(...))``.

    Returns one row per destination node with the sign pair, the fully
    adaptive candidate ports and the ports permitted by North-Last
    routing (some minimal ports are denied to guarantee deadlock freedom).
    """
    warnings.warn(
        "run_es_programming_example() is deprecated; run the 'figure7' Study "
        "instead (repro.scenario.builtin.es_programming_study + "
        "repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _es_programming_rows(mesh_extent=mesh_extent, node_coords=node_coords)
