"""Table 3: impact of message length on the look-ahead benefit.

The paper fixes uniform traffic at normalized load 0.2 and compares the
adaptive router with and without look-ahead for 5-, 10-, 20- and 50-flit
messages: the shorter the message, the larger the relative gain from
removing one pipeline stage per hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.exec.backend import ExecutionBackend, SerialBackend

__all__ = ["run_message_length_study"]


def run_message_length_study(
    base_config: SimulationConfig,
    message_lengths: Sequence[int] = (5, 10, 20, 50),
    traffic: str = "uniform",
    load: float = 0.2,
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 3.

    Returns one row per message length with the adaptive-router latency
    with look-ahead, without look-ahead, and the percentage improvement.
    All (length, pipeline) points are submitted as one batch through
    ``backend``.
    """
    backend = backend if backend is not None else SerialBackend()
    configs: List[SimulationConfig] = []
    for length in message_lengths:
        lookahead_config = base_config.variant(
            traffic=traffic,
            normalized_load=load,
            message_length=length,
            routing="duato",
            pipeline="la-proud",
        )
        configs.append(lookahead_config)
        configs.append(lookahead_config.variant(pipeline="proud"))
    results = backend.run_configs(configs)
    rows: List[Dict[str, object]] = []
    for index, length in enumerate(message_lengths):
        lookahead = results[2 * index]
        baseline = results[2 * index + 1]
        if baseline.latency > 0:
            improvement = 100.0 * (baseline.latency - lookahead.latency) / baseline.latency
        else:
            improvement = 0.0
        rows.append(
            {
                "message_length": length,
                "lookahead_latency": lookahead.latency,
                "no_lookahead_latency": baseline.latency,
                "pct_improvement": improvement,
                "saturated": lookahead.saturated or baseline.saturated,
            }
        )
    return rows
