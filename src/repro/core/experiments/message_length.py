"""Table 3: message-length impact on look-ahead (deprecation shim).

The experiment now lives in the declarative scenario layer as the
built-in ``table3`` study
(:func:`repro.scenario.builtin.message_length_study`);
:func:`run_message_length_study` survives as a thin shim over
:func:`repro.scenario.run_study` returning the same rows as the
historical implementation (enforced by the golden tests).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.exec.backend import ExecutionBackend
from repro.scenario.builtin import message_length_study
from repro.scenario.runner import run_study

__all__ = ["run_message_length_study"]


def run_message_length_study(
    base_config: SimulationConfig,
    message_lengths: Sequence[int] = (5, 10, 20, 50),
    traffic: str = "uniform",
    load: float = 0.2,
    backend: Optional[ExecutionBackend] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 3.

    .. deprecated::
        Build the study instead:
        ``run_study(repro.scenario.builtin.message_length_study(...))``.

    Returns one row per message length with the adaptive-router latency
    with look-ahead, without look-ahead, and the percentage improvement.
    """
    warnings.warn(
        "run_message_length_study() is deprecated; run the 'table3' Study "
        "instead (repro.scenario.builtin.message_length_study + "
        "repro.scenario.run_study)",
        DeprecationWarning,
        stacklevel=2,
    )
    study = message_length_study(
        base_config,
        message_lengths=message_lengths,
        traffic=traffic,
        load=load,
    )
    return run_study(study, backend=backend).rows
