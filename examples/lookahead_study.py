#!/usr/bin/env python
"""Look-ahead study (the paper's Figure 5 and Table 3, scaled down).

Compares the four router organisations -- deterministic and adaptive, each
with and without look-ahead routing -- under two traffic patterns, and then
shows how the look-ahead benefit depends on message length.

Usage::

    python examples/lookahead_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import SimulationConfig, format_rows
from repro.core.experiments.lookahead import run_lookahead_comparison
from repro.core.experiments.message_length import run_message_length_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run on a 4x4 mesh with very few messages (smoke-test mode)",
    )
    args = parser.parse_args()

    if args.quick:
        base = SimulationConfig.tiny(message_length=8)
        loads = (0.15,)
    else:
        base = SimulationConfig.small()
        loads = (0.15, 0.4)

    print("=== Figure 5 (scaled): % latency increase over the LA-ADAPT router ===")
    rows = run_lookahead_comparison(
        base, traffic_patterns=("uniform", "transpose"), loads=loads
    )
    columns = [
        "traffic", "load", "la_adapt_latency",
        "no-la-det_pct_increase", "no-la-adapt_pct_increase", "la-det_pct_increase",
    ]
    print(format_rows(rows, columns=columns))
    print()

    print("=== Table 3 (scaled): look-ahead benefit versus message length ===")
    lengths = (5, 20) if args.quick else (5, 10, 20, 50)
    rows = run_message_length_study(base, message_lengths=lengths, load=0.2)
    print(format_rows(rows, columns=[
        "message_length", "lookahead_latency", "no_lookahead_latency", "pct_improvement",
    ]))
    print()
    print("Reading: shorter messages gain the most from removing one pipeline "
          "stage per hop; adaptivity dominates at high load on non-uniform traffic.")


if __name__ == "__main__":
    main()
