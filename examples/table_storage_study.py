#!/usr/bin/env python
"""Routing-table storage study (the paper's Section 5: Tables 4, 5 and Figure 7).

Three parts:

1. the storage-cost comparison of the four table organisations (Table 5),
2. the Figure 7 example of programming a 9-entry economical-storage table
   for North-Last routing, and
3. a scaled-down version of Table 4: adaptive routing performance with the
   meta-table mappings versus the economical-storage / full table.

Usage::

    python examples/table_storage_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import SimulationConfig, format_rows
from repro.core.experiments.cost_table import run_cost_table
from repro.core.experiments.es_programming import run_es_programming_example
from repro.core.experiments.table_storage import run_table_storage_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run on a 4x4 mesh with very few messages (smoke-test mode)",
    )
    args = parser.parse_args()

    print("=== Table 5: storage cost per router (256-node 2-D mesh) ===")
    print(format_rows(
        run_cost_table(num_nodes=256, n_dims=2),
        columns=["scheme", "entries_per_router", "scalability", "adaptivity"],
    ))
    print()

    print("=== Figure 7(d): economical-storage table of router (1,1), North-Last ===")
    print(format_rows(
        run_es_programming_example(),
        columns=["destination", "sign_x", "sign_y", "candidate_ports", "north_last_ports"],
    ))
    print()

    if args.quick:
        base = SimulationConfig.tiny(message_length=8)
        loads = (0.2,)
        patterns = ("uniform",)
    else:
        base = SimulationConfig.small()
        loads = (0.15, 0.3)
        patterns = ("uniform", "transpose")

    print("=== Table 4 (scaled): latency per table-storage scheme ===")
    rows = run_table_storage_study(
        base, traffic_patterns=patterns, loads=loads, include_full_table=True
    )
    print(format_rows(rows, columns=[
        "traffic", "load",
        "meta_adaptive_label", "meta_deterministic_label",
        "economical_label", "full_table_label",
    ]))
    print()
    print("Reading: the 9-entry economical-storage table matches the full table "
          "exactly, while the meta-table mappings lose adaptivity (the block "
          "mapping congests at cluster boundaries and saturates first).")


if __name__ == "__main__":
    main()
