#!/usr/bin/env python
"""Paper-scale campaign: every experiment on the paper's 16x16 mesh.

The paper's evaluation runs on a 256-node (16x16) mesh with 20-flit
messages.  A full flit-level reproduction at that scale used to be
prohibitively slow in pure Python; the activity-aware simulation kernel
(idle components are skipped, idle spans are fast-forwarded) combined
with the parallel execution backend and the on-disk result cache makes it
a practical batch job.  This example reproduces the complete campaign --
the look-ahead comparison, message-length study, path-selection study and
table-storage study -- at paper scale.

Usage::

    # Default: 16x16, 2,000 measured messages per point, serial
    PYTHONPATH=src python examples/paper_campaign_16x16.py

    # All cores, resumable (interrupt and rerun to pick up where it left off)
    PYTHONPATH=src python examples/paper_campaign_16x16.py \
        --workers 8 --cache-dir .lapses-cache-16x16

    # The paper's full measurement window (400,000 messages -- hours!)
    PYTHONPATH=src python examples/paper_campaign_16x16.py --full --workers 8

    # Quick smoke run (a few minutes, serial)
    PYTHONPATH=src python examples/paper_campaign_16x16.py --quick
"""

from __future__ import annotations

import argparse
import sys

from repro.core.campaign import run_campaign
from repro.core.config import PaperDefaults, SimulationConfig
from repro.exec import make_backend


def build_config(args: argparse.Namespace) -> SimulationConfig:
    if args.full:
        return SimulationConfig.paper(seed=args.seed)
    if args.quick:
        warmup, measured = 50, 300
    else:
        warmup, measured = 200, 2_000
    return SimulationConfig.paper(
        seed=args.seed,
        warmup_messages=warmup,
        measure_messages=measured,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="simulate N points in parallel (default: serial)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="persist per-point results so reruns resume")
    parser.add_argument("--seed", type=int, default=1, help="master random seed")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test window (300 measured messages per point)")
    parser.add_argument("--full", action="store_true",
                        help=f"the paper's window ({PaperDefaults.MEASURE_MESSAGES:,} "
                             "measured messages per point; expect hours)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the Markdown report to FILE")
    args = parser.parse_args(argv)
    if args.quick and args.full:
        parser.error("--quick and --full are mutually exclusive")

    base = build_config(args)
    print(f"campaign base: {base.mesh_dims[0]}x{base.mesh_dims[1]} mesh, "
          f"{base.message_length}-flit messages, "
          f"{base.measure_messages:,} measured messages per point", file=sys.stderr)

    with make_backend(workers=args.workers, cache_dir=args.cache_dir) as backend:
        report = run_campaign(
            base,
            loads_low_high=(0.15, 0.4),
            traffic_patterns=PaperDefaults.TRAFFIC_PATTERNS,
            backend=backend,
        )
        simulated = backend.simulations_run
        cache = backend.cache

    text = report.to_markdown()
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    summary = f"campaign: {simulated} simulations run"
    if cache is not None:
        summary += f", {cache.hits} served from cache ({cache.cache_dir})"
    print(summary, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
