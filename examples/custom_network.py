#!/usr/bin/env python
"""Composing the library's pieces directly (beyond the string-based config).

This example builds a network by hand -- topology, routing table, routing
algorithm, per-router path selectors -- the way a router-architecture study
would extend the library: it programs a *custom* economical-storage table
(North-Last turn-model routing instead of fully adaptive) and runs a small
load sweep with it, comparing against Duato's fully adaptive algorithm.

Usage::

    python examples/custom_network.py
"""

from __future__ import annotations

from repro import SimulationConfig, format_rows, run_load_sweep
from repro.core.simulator import NetworkSimulator, build_topology
from repro.routing.providers import north_last_provider
from repro.tables.economical import EconomicalStorageTable


def sweep(config: SimulationConfig, loads) -> list:
    rows = []
    for point in run_load_sweep(config, loads):
        rows.append(
            {
                "routing": config.routing,
                "load": point.normalized_load,
                "latency": point.result.latency_label(),
                "hops": point.result.summary.avg_hops,
            }
        )
    return rows


def main() -> None:
    loads = (0.15, 0.3, 0.45)
    base = SimulationConfig(
        mesh_dims=(6, 6),
        message_length=12,
        warmup_messages=80,
        measure_messages=600,
        traffic="transpose",
        selector="lru",
        pipeline="la-proud",
    )

    # Turn-model (North-Last) routing: partially adaptive, needs only one
    # virtual channel class, and its relation fits the 9-entry table.
    north_last = base.variant(routing="north-last")
    # Duato's fully adaptive routing over the same 9-entry table.
    duato = base.variant(routing="duato")

    rows = sweep(north_last, loads) + sweep(duato, loads)
    print("=== North-Last (turn model) vs Duato fully adaptive, transpose traffic ===")
    print(format_rows(rows, columns=["routing", "load", "latency", "hops"]))
    print()

    # Show the programmable-table API directly: the North-Last relation
    # programmed into a sign-indexed economical-storage table.
    topology = build_topology(base)
    table = EconomicalStorageTable(topology, provider=north_last_provider(topology))
    center = topology.node_id((3, 3))
    print(f"economical-storage entries of router {topology.coordinates(center)} "
          f"programmed for North-Last routing:")
    for signs, ports in table.describe(center):
        print(f"  signs={signs!s:>10}  ports={ports}")
    print()

    simulator = NetworkSimulator(duato.variant(normalized_load=0.3))
    print(f"table used by the packaged simulator : {simulator.table.name} "
          f"({simulator.table.entries_per_router()} entries/router)")


if __name__ == "__main__":
    main()
