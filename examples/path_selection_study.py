#!/usr/bin/env python
"""Path-selection study (the paper's Figure 6, scaled down).

Simulates the look-ahead adaptive router with the five path-selection
heuristics of the paper (STATIC-XY, MIN-MUX, LFU, LRU, MAX-CREDIT) on
uniform and transpose traffic and prints the average latency of each.

Usage::

    python examples/path_selection_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import SimulationConfig, format_rows
from repro.core.experiments.path_selection import PAPER_SELECTORS, run_path_selection_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run on a 4x4 mesh with very few messages (smoke-test mode)",
    )
    args = parser.parse_args()

    if args.quick:
        base = SimulationConfig.tiny(message_length=8)
        loads = (0.3,)
    else:
        base = SimulationConfig.small()
        loads = (0.2, 0.4)

    rows = run_path_selection_study(
        base,
        selectors=PAPER_SELECTORS,
        traffic_patterns=("uniform", "transpose"),
        loads=loads,
    )
    columns = ["traffic", "load"] + [f"{name}_latency" for name in PAPER_SELECTORS]
    print("=== Figure 6 (scaled): average latency per path-selection heuristic ===")
    print(format_rows(rows, columns=columns))
    print()
    print("Reading: on uniform traffic the static preference is fine; on the "
          "non-uniform patterns the traffic-sensitive heuristics (LRU, LFU, "
          "MAX-CREDIT, MIN-MUX) spread messages over the alternate paths and "
          "reduce latency at medium-to-high load.")


if __name__ == "__main__":
    main()
