#!/usr/bin/env python
"""Quickstart: simulate one LAPSES router configuration and print the results.

Runs the look-ahead adaptive router (LA-PROUD pipeline, Duato's fully
adaptive routing over an economical-storage table, MAX-CREDIT path
selection) on a small mesh under transpose traffic and reports the average
message latency, throughput and hop count.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NetworkSimulator, SimulationConfig


def main() -> None:
    config = SimulationConfig.small(
        traffic="transpose",
        normalized_load=0.3,
        pipeline="la-proud",
        routing="duato",
        table="economical",
        selector="max-credit",
    )
    print(f"simulating {config.num_nodes}-node mesh {config.mesh_dims}, "
          f"traffic={config.traffic}, normalized load={config.normalized_load}")

    simulator = NetworkSimulator(config)
    print(f"routing table: {simulator.table.name} "
          f"({simulator.table.entries_per_router()} entries per router)")
    print(f"analytic zero-load latency: {simulator.zero_load_latency():.1f} cycles")

    result = simulator.run()
    summary = result.summary
    print()
    print(f"cycles simulated        : {result.cycles}")
    print(f"messages delivered      : {summary.delivered} ({summary.measured} measured)")
    print(f"average latency         : {summary.avg_total_latency:.1f} cycles")
    print(f"average network latency : {summary.avg_network_latency:.1f} cycles")
    print(f"average hops            : {summary.avg_hops:.2f}")
    print(f"throughput              : {summary.throughput:.3f} flits/node/cycle")
    print(f"saturated               : {'yes' if result.saturated else 'no'}")


if __name__ == "__main__":
    main()
