"""A user-registered traffic pattern, run through the declarative study API.

This file is a *plugin*: importing it registers a new traffic pattern --
``diagonal``, where node (x, y) sends to its mirror (N-1-x, N-1-y) --
without touching anything under ``src/repro/``.  Once registered, the
pattern works everywhere a built-in does: configurations validate it,
studies sweep it, the result cache keys on its implementation, and the
CLI runs it::

    PYTHONPATH=src python -m repro.cli study examples/specs/diagonal_sweep.json \
        --plugin examples/custom_pattern_plugin.py

(the spec file also lists this module under ``"plugins"``, so the
``--plugin`` flag is optional; worker processes of ``--workers N`` import
it automatically).

Run this file directly for the pure-Python version of the same study::

    PYTHONPATH=src python examples/custom_pattern_plugin.py
"""

from repro.registry import register
from repro.traffic.patterns import TrafficPattern


@register("traffic")
class DiagonalPattern(TrafficPattern):
    """Mirror traffic: node (x, y, ...) sends to (N-1-x, M-1-y, ...).

    Every message crosses the mesh center, which concentrates traffic on
    the middle routers -- a simple adversarial pattern for adaptive
    routing.  The center node of odd-extent meshes is its own mirror and,
    like the permutation fixed points of the built-in patterns, does not
    inject.
    """

    name = "diagonal"

    def destination(self, source, rng):
        coords = self._topology.coordinates(source)
        mirrored = tuple(
            extent - 1 - coordinate
            for coordinate, extent in zip(coords, self._topology.dims)
        )
        destination = self._topology.node_id(mirrored)
        return None if destination == source else destination


def build_study(loads=(0.1, 0.2)):
    """A latency/load sweep of the diagonal pattern (tiny scale)."""
    from repro.core.config import SimulationConfig
    from repro.scenario.builtin import sweep_study

    base = SimulationConfig.tiny(traffic="diagonal")
    study = sweep_study(base, loads=loads, stop_at_saturation=False,
                        name="diagonal-sweep")
    return study


def main():
    from repro.core.results import format_rows
    from repro.scenario import run_study

    outcome = run_study(build_study())
    print(format_rows(outcome.rows, precision=2))


if __name__ == "__main__":
    main()
