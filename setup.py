"""Setuptools shim.

The project is described by ``pyproject.toml``; this file exists so that
``pip install -e . --no-build-isolation`` (the offline-friendly editable
install) can fall back to the legacy setuptools code path on environments
without the ``wheel`` package.
"""

from setuptools import setup

setup()
